//! The EM-refit elicitation baseline (Section 2.1's "expensive alternative").
//!
//! Gaussian mixtures are not closed under the preference update of
//! Equation (2).  One conventional fix is to *force* the posterior back into
//! mixture form: draw samples consistent with the feedback, fit a fresh
//! Gaussian mixture to them with expectation–maximisation, and use that
//! mixture as the new prior.  The paper rejects this because refitting after
//! every click is costly; this module implements it anyway so the benchmark
//! suite can measure the cost gap against the paper's sample-maintenance
//! approach.

use pkgrec_core::constraints::{ConstraintChecker, ConstraintSource};
use pkgrec_core::preferences::Preference;
use pkgrec_core::sampler::{RejectionSampler, SamplePool, WeightSampler};
use pkgrec_core::{CoreError, Result};
use pkgrec_gmm::em::{fit_mixture, EmConfig};
use pkgrec_gmm::GaussianMixture;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Cumulative cost statistics of an EM-refit run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EmRefitStats {
    /// Number of refits performed (one per feedback batch).
    pub refits: usize,
    /// Total EM iterations across all refits.
    pub em_iterations: usize,
    /// Total samples drawn to feed the refits.
    pub samples_drawn: usize,
}

/// An elicitation state that refits its Gaussian-mixture belief after every
/// feedback batch instead of maintaining a constrained sample pool.
#[derive(Debug, Clone)]
pub struct EmRefitRecommender {
    belief: GaussianMixture,
    dim: usize,
    components: usize,
    samples_per_refit: usize,
    stats: EmRefitStats,
}

impl EmRefitRecommender {
    /// Creates the baseline with an uninformative prior of `components`
    /// Gaussians over a `dim`-dimensional weight space.
    pub fn new(
        dim: usize,
        components: usize,
        sigma: f64,
        samples_per_refit: usize,
    ) -> Result<Self> {
        if samples_per_refit == 0 {
            return Err(CoreError::InvalidConfig(
                "samples_per_refit must be at least 1".into(),
            ));
        }
        Ok(EmRefitRecommender {
            belief: GaussianMixture::default_prior(dim, components.max(1), sigma)?,
            dim,
            components: components.max(1),
            samples_per_refit,
            stats: EmRefitStats::default(),
        })
    }

    /// The current belief mixture.
    pub fn belief(&self) -> &GaussianMixture {
        &self.belief
    }

    /// Cumulative cost statistics.
    pub fn stats(&self) -> &EmRefitStats {
        &self.stats
    }

    /// Draws a pool of samples from the *current* belief (no constraints) —
    /// what the downstream ranking step of this baseline would consume.
    pub fn sample_pool(&self, n: usize, rng: &mut dyn RngCore) -> SamplePool {
        let sampler = RejectionSampler::default();
        let empty = ConstraintChecker::from_constraints(self.dim, vec![], ConstraintSource::Full);
        sampler
            .generate(&self.belief, &empty, n, rng)
            .map(|o| o.pool)
            .unwrap_or_default()
    }

    /// Absorbs a batch of feedback preferences by constrained sampling from
    /// the current belief followed by an EM refit of the mixture.
    pub fn absorb_feedback(
        &mut self,
        feedback: &[Preference],
        rng: &mut dyn RngCore,
    ) -> Result<()> {
        let constraints = feedback
            .iter()
            .map(Preference::constraint)
            .collect::<Vec<_>>();
        let checker =
            ConstraintChecker::from_constraints(self.dim, constraints, ConstraintSource::Full);
        let sampler = RejectionSampler::default();
        let outcome = sampler.generate(&self.belief, &checker, self.samples_per_refit, rng)?;
        let samples = outcome.pool.weight_rows();
        let weights = vec![1.0; samples.len()];
        let fit = fit_mixture(
            &samples,
            &weights,
            &EmConfig {
                num_components: self.components,
                ..EmConfig::default()
            },
            rng,
        )?;
        self.stats.refits += 1;
        self.stats.em_iterations += fit.iterations;
        self.stats.samples_drawn += outcome.proposals;
        self.belief = fit.mixture;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_configuration() {
        assert!(EmRefitRecommender::new(3, 1, 0.5, 0).is_err());
        let r = EmRefitRecommender::new(3, 2, 0.5, 100).unwrap();
        assert_eq!(r.belief().dim(), 3);
        assert_eq!(r.stats().refits, 0);
    }

    #[test]
    fn absorbing_feedback_moves_the_belief_toward_the_constraint() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut r = EmRefitRecommender::new(2, 1, 0.5, 400).unwrap();
        // Feedback: the package that is better on feature 0 is preferred, so
        // consistent weight vectors have w0 >= w1-ish structure: use a pure
        // f0 preference.
        let pref = Preference::new(vec![0.9, 0.1], vec![0.1, 0.1]);
        for _ in 0..3 {
            r.absorb_feedback(std::slice::from_ref(&pref), &mut rng)
                .unwrap();
        }
        assert_eq!(r.stats().refits, 3);
        assert!(r.stats().em_iterations >= 3);
        assert!(r.stats().samples_drawn >= 1200);
        // The fitted belief should now concentrate on w0 > 0.
        let mean0: f64 = r.belief().components().map(|(w, g)| w * g.mean()[0]).sum();
        assert!(mean0 > 0.1, "belief mean on w0 is {mean0}");
    }

    #[test]
    fn sample_pool_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(32);
        let r = EmRefitRecommender::new(2, 1, 0.5, 100).unwrap();
        let pool = r.sample_pool(50, &mut rng);
        assert_eq!(pool.len(), 50);
    }

    #[test]
    fn refit_keeps_the_requested_number_of_components() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut r = EmRefitRecommender::new(2, 3, 0.5, 300).unwrap();
        let pref = Preference::new(vec![0.5, 0.9], vec![0.5, 0.1]);
        r.absorb_feedback(std::slice::from_ref(&pref), &mut rng)
            .unwrap();
        assert_eq!(r.belief().num_components(), 3);
    }
}
