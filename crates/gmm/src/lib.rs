//! Gaussian-mixture substrate for the `pkgrec` package recommender.
//!
//! The preference-elicitation framework of Xie, Lakshmanan and Wood (VLDB 2014)
//! models the uncertainty about a user's hidden utility weight vector `w` with a
//! probability distribution `Pw`, assumed to be a **mixture of Gaussians** (any
//! density can be approximated arbitrarily well by such a mixture).  This crate
//! provides everything the rest of the system needs from that model:
//!
//! * dense [`Vector`]/[`Matrix`] helpers with a small Cholesky factorisation
//!   (no external linear-algebra dependency),
//! * multivariate [`Gaussian`] components with sampling and (log-)density,
//! * [`GaussianMixture`] priors with sampling, density and serialisation,
//! * an [`em`] module implementing expectation–maximisation refitting — the
//!   "expensive baseline" the paper argues against but which we provide for the
//!   ablation benchmarks,
//! * [`ens`]: χ² distance between distributions and the *Effective Number of
//!   Samples* diagnostic used in the paper's Theorems 1 and 2.
//!
//! All randomness flows through [`rand::Rng`] so experiments are reproducible
//! with seeded generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod em;
pub mod ens;
pub mod gaussian;
pub mod linalg;
pub mod mixture;
pub mod normal;

pub use ens::{
    chi_square_distance, effective_number_of_samples, effective_number_of_samples_from_weights,
};
pub use gaussian::Gaussian;
pub use linalg::{Matrix, Vector};
pub use mixture::{GaussianMixture, MixtureComponent};
pub use normal::{standard_normal, standard_normal_vector};

/// Errors produced by the Gaussian-mixture substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum GmmError {
    /// A covariance matrix was not positive definite (Cholesky failed).
    NotPositiveDefinite,
    /// Dimensions of two operands do not match.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// A mixture was constructed with no components.
    EmptyMixture,
    /// Mixture weights must be positive and finite.
    InvalidWeight(f64),
    /// EM was asked to fit against an empty or degenerate sample set.
    DegenerateFit,
}

impl std::fmt::Display for GmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GmmError::NotPositiveDefinite => {
                write!(f, "covariance matrix is not positive definite")
            }
            GmmError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GmmError::EmptyMixture => write!(f, "mixture must have at least one component"),
            GmmError::InvalidWeight(w) => write!(f, "invalid mixture weight {w}"),
            GmmError::DegenerateFit => write!(f, "cannot fit mixture to degenerate sample set"),
        }
    }
}

impl std::error::Error for GmmError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GmmError>;
