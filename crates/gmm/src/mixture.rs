//! Gaussian mixtures: the prior distribution `Pw` over utility weight vectors.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gaussian::Gaussian;
use crate::linalg::Vector;
use crate::{GmmError, Result};

/// One weighted component of a [`GaussianMixture`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixtureComponent {
    /// Mixing weight (strictly positive; the mixture normalises them).
    pub weight: f64,
    /// The Gaussian component.
    pub gaussian: Gaussian,
}

/// A mixture of multivariate Gaussians.
///
/// The paper assumes the prior `Pw` over utility weight vectors is a mixture of
/// Gaussians because such mixtures can approximate any density (Section 2.1).
/// The mixture supports sampling (select a component by weight, then sample the
/// component) and exact density evaluation, which is all the constrained
/// samplers need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianMixture {
    components: Vec<MixtureComponent>,
    /// Cumulative normalised weights for O(log k) component selection.
    cumulative: Vec<f64>,
    dim: usize,
}

impl GaussianMixture {
    /// Creates a mixture from weighted components.
    ///
    /// Weights must be positive and finite; they are normalised internally.
    /// All components must share the same dimensionality.
    pub fn new(components: Vec<MixtureComponent>) -> Result<Self> {
        if components.is_empty() {
            return Err(GmmError::EmptyMixture);
        }
        let dim = components[0].gaussian.dim();
        let mut total = 0.0;
        for c in &components {
            if c.weight <= 0.0 || !c.weight.is_finite() {
                return Err(GmmError::InvalidWeight(c.weight));
            }
            if c.gaussian.dim() != dim {
                return Err(GmmError::DimensionMismatch {
                    expected: dim,
                    actual: c.gaussian.dim(),
                });
            }
            total += c.weight;
        }
        let mut cumulative = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for c in &components {
            acc += c.weight / total;
            cumulative.push(acc);
        }
        // Guard against floating point drift so the last bucket always catches.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(GaussianMixture {
            components,
            cumulative,
            dim,
        })
    }

    /// A single-component mixture (plain Gaussian prior).
    pub fn single(gaussian: Gaussian) -> Result<Self> {
        GaussianMixture::new(vec![MixtureComponent {
            weight: 1.0,
            gaussian,
        }])
    }

    /// The default prior used throughout the paper's experiments: a mixture of
    /// `k` isotropic Gaussians with standard deviation `sigma`, with means
    /// spread deterministically inside the weight hyper-cube `[-1, 1]^dim`.
    ///
    /// With `k == 1` this is a zero-mean isotropic Gaussian, i.e. an
    /// uninformative prior centred on "indifferent to every feature".
    pub fn default_prior(dim: usize, k: usize, sigma: f64) -> Result<Self> {
        if k == 0 {
            return Err(GmmError::EmptyMixture);
        }
        let mut comps = Vec::with_capacity(k);
        for i in 0..k {
            let mean: Vector = if k == 1 {
                vec![0.0; dim]
            } else {
                // Spread means along a diagonal lattice in [-0.5, 0.5]^dim so
                // multiple Gaussians cover distinct regions of weight space.
                let offset = -0.5 + (i as f64 + 0.5) / k as f64;
                (0..dim)
                    .map(|d| if d % 2 == 0 { offset } else { -offset })
                    .collect()
            };
            comps.push(MixtureComponent {
                weight: 1.0,
                gaussian: Gaussian::isotropic(mean, sigma)?,
            });
        }
        GaussianMixture::new(comps)
    }

    /// Dimensionality of the mixture.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The mixture components with their normalised weights.
    pub fn components(&self) -> impl Iterator<Item = (f64, &Gaussian)> + '_ {
        let total: f64 = self.components.iter().map(|c| c.weight).sum();
        self.components
            .iter()
            .map(move |c| (c.weight / total, &c.gaussian))
    }

    /// Draws one sample from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let u: f64 = rng.gen();
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.components.len() - 1),
        };
        self.components[idx].gaussian.sample(rng)
    }

    /// Draws `n` samples from the mixture.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vector> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability density of the mixture at `x`.
    pub fn pdf(&self, x: &[f64]) -> Result<f64> {
        let mut p = 0.0;
        for (w, g) in self.components() {
            p += w * g.pdf(x)?;
        }
        Ok(p)
    }

    /// Log density of the mixture at `x` (computed via log-sum-exp for
    /// numerical stability).
    pub fn log_pdf(&self, x: &[f64]) -> Result<f64> {
        let mut terms = Vec::with_capacity(self.components.len());
        for (w, g) in self.components() {
            terms.push(w.ln() + g.log_pdf(x)?);
        }
        let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            return Ok(f64::NEG_INFINITY);
        }
        let sum: f64 = terms.iter().map(|t| (t - max).exp()).sum();
        Ok(max + sum.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_component_mixture() -> GaussianMixture {
        GaussianMixture::new(vec![
            MixtureComponent {
                weight: 1.0,
                gaussian: Gaussian::isotropic(vec![-0.5, -0.5], 0.2).unwrap(),
            },
            MixtureComponent {
                weight: 3.0,
                gaussian: Gaussian::isotropic(vec![0.5, 0.5], 0.2).unwrap(),
            },
        ])
        .unwrap()
    }

    #[test]
    fn empty_mixture_rejected() {
        assert_eq!(
            GaussianMixture::new(vec![]).unwrap_err(),
            GmmError::EmptyMixture
        );
        assert!(GaussianMixture::default_prior(3, 0, 1.0).is_err());
    }

    #[test]
    fn invalid_weight_rejected() {
        let g = Gaussian::isotropic(vec![0.0], 1.0).unwrap();
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = GaussianMixture::new(vec![MixtureComponent {
                weight: w,
                gaussian: g.clone(),
            }])
            .unwrap_err();
            assert!(matches!(err, GmmError::InvalidWeight(_)));
        }
    }

    #[test]
    fn mismatched_component_dimensions_rejected() {
        let err = GaussianMixture::new(vec![
            MixtureComponent {
                weight: 1.0,
                gaussian: Gaussian::isotropic(vec![0.0, 0.0], 1.0).unwrap(),
            },
            MixtureComponent {
                weight: 1.0,
                gaussian: Gaussian::isotropic(vec![0.0], 1.0).unwrap(),
            },
        ])
        .unwrap_err();
        assert!(matches!(err, GmmError::DimensionMismatch { .. }));
    }

    #[test]
    fn pdf_integrates_weights() {
        let m = two_component_mixture();
        // Density near the heavier component's mean should dominate.
        let near_heavy = m.pdf(&[0.5, 0.5]).unwrap();
        let near_light = m.pdf(&[-0.5, -0.5]).unwrap();
        assert!(near_heavy > 2.5 * near_light);
    }

    #[test]
    fn log_pdf_matches_pdf() {
        let m = two_component_mixture();
        for x in [[0.0, 0.0], [0.5, 0.5], [-0.7, 0.3]] {
            let p = m.pdf(&x).unwrap();
            let lp = m.log_pdf(&x).unwrap();
            assert!((lp - p.ln()).abs() < 1e-9, "x {x:?}: {lp} vs {}", p.ln());
        }
    }

    #[test]
    fn sampling_respects_component_weights() {
        let m = two_component_mixture();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 40_000;
        let near_heavy = m
            .sample_n(&mut rng, n)
            .iter()
            .filter(|s| s[0] > 0.0)
            .count() as f64
            / n as f64;
        // 75% of samples should come from the component centred at (0.5, 0.5).
        assert!((near_heavy - 0.75).abs() < 0.02, "fraction {near_heavy}");
    }

    #[test]
    fn default_prior_shapes() {
        let m = GaussianMixture::default_prior(4, 3, 0.5).unwrap();
        assert_eq!(m.dim(), 4);
        assert_eq!(m.num_components(), 3);
        let single = GaussianMixture::default_prior(2, 1, 1.0).unwrap();
        assert_eq!(single.components().next().unwrap().1.mean(), &[0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = two_component_mixture();
        let json = serde_json::to_string(&m).unwrap();
        let back: GaussianMixture = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dim(), 2);
        assert_eq!(back.num_components(), 2);
        let x = [0.1, 0.2];
        assert!((back.pdf(&x).unwrap() - m.pdf(&x).unwrap()).abs() < 1e-12);
    }
}
