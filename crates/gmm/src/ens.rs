//! χ² distance and the Effective Number of Samples (ENS) diagnostic.
//!
//! Section 3.2.1 of the paper compares sampling strategies via the classic
//! Effective Number of Samples of Kong, Liu and Wong (1994):
//!
//! ```text
//! ENS(P, Q) = N / (1 + χ²(P, Q))
//! χ²(P, Q)  = ∫ (P(w) - Q(w))² / Q(w) dw
//! ```
//!
//! where `P` is the target (posterior) distribution and `Q` the proposal.  The
//! integral has no closed form for our constrained posteriors, so this module
//! provides two estimators:
//!
//! * [`chi_square_distance`] — a Monte-Carlo estimator evaluated over a set of
//!   points drawn from the proposal, and
//! * [`effective_number_of_samples_from_weights`] — the standard
//!   importance-weight form `(Σ q_i)² / Σ q_i²`, which is how the experiments
//!   in Section 5.1 report sampler quality.

/// Monte-Carlo estimate of `χ²(P, Q)` given target and proposal densities
/// evaluated at points drawn from the proposal `Q`.
///
/// `target_density[i]` and `proposal_density[i]` must both refer to the same
/// evaluation point `w_i ~ Q`.  Points where the proposal density is zero are
/// skipped (they carry no Monte-Carlo weight).
pub fn chi_square_distance(target_density: &[f64], proposal_density: &[f64]) -> f64 {
    assert_eq!(
        target_density.len(),
        proposal_density.len(),
        "density slices must be evaluated at the same points"
    );
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&p, &q) in target_density.iter().zip(proposal_density.iter()) {
        if q <= 0.0 {
            continue;
        }
        // E_Q[(P - Q)² / Q²] = E_Q[(P/Q - 1)²] estimates χ² under Q.
        let r = p / q - 1.0;
        acc += r * r;
        n += 1;
    }
    if n == 0 {
        return f64::INFINITY;
    }
    acc / n as f64
}

/// Effective number of samples given a χ² distance, `N / (1 + χ²)`.
pub fn effective_number_of_samples(n: usize, chi_square: f64) -> f64 {
    if !chi_square.is_finite() {
        return 0.0;
    }
    n as f64 / (1.0 + chi_square)
}

/// Effective number of samples computed from importance weights:
/// `ENS = (Σ q_i)² / Σ q_i²`.
///
/// For unweighted (rejection) samples all weights are 1 and the value equals
/// the number of accepted samples; heavily skewed weights push it toward 1.
pub fn effective_number_of_samples_from_weights(weights: &[f64]) -> f64 {
    let sum: f64 = weights.iter().sum();
    let sum_sq: f64 = weights.iter().map(|w| w * w).sum();
    if sum_sq == 0.0 {
        0.0
    } else {
        sum * sum / sum_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_chi_square() {
        let p = vec![0.2, 0.5, 0.9, 1.3];
        assert!(chi_square_distance(&p, &p).abs() < 1e-15);
        assert!((effective_number_of_samples(100, 0.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn farther_proposal_has_larger_chi_square() {
        let target = vec![1.0, 1.0, 1.0, 1.0];
        let close = vec![0.9, 1.1, 1.0, 1.0];
        let far = vec![0.1, 2.0, 3.0, 0.2];
        assert!(chi_square_distance(&target, &close) < chi_square_distance(&target, &far));
    }

    #[test]
    fn zero_proposal_points_are_skipped() {
        let target = vec![1.0, 1.0];
        let proposal = vec![0.0, 1.0];
        assert!(chi_square_distance(&target, &proposal).abs() < 1e-15);
    }

    #[test]
    fn all_zero_proposal_gives_zero_ens() {
        let d = chi_square_distance(&[1.0], &[0.0]);
        assert!(d.is_infinite());
        assert_eq!(effective_number_of_samples(10, d), 0.0);
    }

    #[test]
    fn uniform_weights_give_full_ens() {
        let w = vec![1.0; 50];
        assert!((effective_number_of_samples_from_weights(&w) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_weights_reduce_ens() {
        let mut w = vec![0.001; 49];
        w.push(1.0);
        let ens = effective_number_of_samples_from_weights(&w);
        assert!(ens < 2.0, "ens {ens}");
        assert_eq!(effective_number_of_samples_from_weights(&[]), 0.0);
    }
}
