//! Standard-normal sampling via the Box–Muller transform.
//!
//! `rand` alone does not ship a Gaussian distribution (that lives in
//! `rand_distr`), and the only thing this project needs is a stream of
//! independent standard-normal variates, so we implement the polar form of the
//! Box–Muller transform directly.

use rand::Rng;

/// Draws one standard-normal (`N(0, 1)`) variate.
///
/// Uses the Marsaglia polar method, which avoids trigonometric functions and
/// rejects points outside the unit disc (acceptance probability π/4 ≈ 0.785).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return u * factor;
        }
    }
}

/// Draws a vector of `dim` independent standard-normal variates.
pub fn standard_normal_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_variance_are_close_to_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.02, "variance {var} too far from 1");
    }

    #[test]
    fn vector_has_requested_dimension() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(standard_normal_vector(&mut rng, 5).len(), 5);
        assert!(standard_normal_vector(&mut rng, 0).is_empty());
    }

    #[test]
    fn tail_mass_is_reasonable() {
        // About 31.7% of the mass lies outside [-1, 1]; check we are in range.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let outside = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 1.0)
            .count() as f64
            / n as f64;
        assert!((outside - 0.3173).abs() < 0.01, "tail mass {outside}");
    }
}
