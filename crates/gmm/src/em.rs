//! Expectation–maximisation refitting of Gaussian mixtures.
//!
//! Section 2.1 of the paper notes that Gaussian mixtures are not closed under
//! the preference-feedback update of Equation (2), and that one conventional
//! answer is to *refit* a mixture to the (implicit) posterior with EM after
//! every feedback — which is exactly what the paper argues is too expensive in
//! an interactive loop.  We implement the refit here so that
//! `pkgrec-baselines` can benchmark it against the paper's sampling approach.
//!
//! The refit works on a *weighted* sample set (samples drawn from the prior
//! that satisfy the feedback, with optional importance weights), fitting
//! diagonal-covariance components, which is the standard practical choice for
//! low-dimensional weight spaces.

use rand::Rng;

use crate::gaussian::Gaussian;
use crate::linalg::Vector;
use crate::mixture::{GaussianMixture, MixtureComponent};
use crate::{GmmError, Result};

/// Configuration for [`fit_mixture`].
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Number of mixture components to fit.
    pub num_components: usize,
    /// Maximum number of EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative change of the log-likelihood.
    pub tolerance: f64,
    /// Variance floor to keep components from collapsing onto single points.
    pub min_variance: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            num_components: 1,
            max_iterations: 50,
            tolerance: 1e-6,
            min_variance: 1e-4,
        }
    }
}

/// Outcome of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// The fitted mixture.
    pub mixture: GaussianMixture,
    /// Final (weighted) log-likelihood of the data under the fitted mixture.
    pub log_likelihood: f64,
    /// Number of iterations actually performed.
    pub iterations: usize,
}

/// Fits a diagonal-covariance Gaussian mixture to weighted samples with EM.
///
/// `samples` are points in weight space; `weights` are non-negative importance
/// weights (use all-ones for unweighted data).  Initial means are chosen by
/// sampling data points proportionally to their weights.
pub fn fit_mixture<R: Rng + ?Sized>(
    samples: &[Vector],
    weights: &[f64],
    config: &EmConfig,
    rng: &mut R,
) -> Result<EmFit> {
    if samples.is_empty() || samples.len() != weights.len() || config.num_components == 0 {
        return Err(GmmError::DegenerateFit);
    }
    let dim = samples[0].len();
    if samples.iter().any(|s| s.len() != dim) {
        return Err(GmmError::DegenerateFit);
    }
    let total_weight: f64 = weights.iter().sum();
    // NaN must fail too, so the comparison is deliberately inverted.
    if total_weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(GmmError::DegenerateFit);
    }
    let k = config.num_components;
    let n = samples.len();

    // Initialise means by weighted random draws from the data, and variances
    // from the global per-dimension variance.
    let global_mean: Vector = (0..dim)
        .map(|d| {
            samples
                .iter()
                .zip(weights)
                .map(|(s, w)| s[d] * w)
                .sum::<f64>()
                / total_weight
        })
        .collect();
    let global_var: Vector = (0..dim)
        .map(|d| {
            let v = samples
                .iter()
                .zip(weights)
                .map(|(s, w)| w * (s[d] - global_mean[d]).powi(2))
                .sum::<f64>()
                / total_weight;
            v.max(config.min_variance)
        })
        .collect();

    let mut means: Vec<Vector> = (0..k)
        .map(|_| {
            let target: f64 = rng.gen::<f64>() * total_weight;
            let mut acc = 0.0;
            for (s, w) in samples.iter().zip(weights) {
                acc += w;
                if acc >= target {
                    return s.clone();
                }
            }
            samples[n - 1].clone()
        })
        .collect();
    let mut variances: Vec<Vector> = vec![global_var.clone(); k];
    let mut mix_weights: Vec<f64> = vec![1.0 / k as f64; k];

    let mut responsibilities = vec![vec![0.0; k]; n];
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // E step: responsibilities via log-sum-exp.
        let mut ll = 0.0;
        let gaussians: Vec<Gaussian> = (0..k)
            .map(|j| Gaussian::diagonal(means[j].clone(), &variances[j]))
            .collect::<Result<_>>()?;
        for (i, s) in samples.iter().enumerate() {
            let mut log_terms = vec![0.0; k];
            for j in 0..k {
                log_terms[j] = mix_weights[j].max(1e-300).ln() + gaussians[j].log_pdf(s)?;
            }
            let max = log_terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum: f64 = log_terms.iter().map(|t| (t - max).exp()).sum();
            let log_px = max + sum.ln();
            ll += weights[i] * log_px;
            for j in 0..k {
                responsibilities[i][j] = (log_terms[j] - log_px).exp();
            }
        }

        // M step.
        for j in 0..k {
            let nj: f64 = samples
                .iter()
                .enumerate()
                .map(|(i, _)| weights[i] * responsibilities[i][j])
                .sum();
            if nj <= 1e-12 {
                // Re-seed an empty component at a random data point.
                let idx = rng.gen_range(0..n);
                means[j] = samples[idx].clone();
                variances[j] = global_var.clone();
                mix_weights[j] = 1.0 / k as f64;
                continue;
            }
            mix_weights[j] = nj / total_weight;
            for d in 0..dim {
                let m: f64 = samples
                    .iter()
                    .enumerate()
                    .map(|(i, s)| weights[i] * responsibilities[i][j] * s[d])
                    .sum::<f64>()
                    / nj;
                means[j][d] = m;
            }
            for d in 0..dim {
                let v: f64 = samples
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        weights[i] * responsibilities[i][j] * (s[d] - means[j][d]).powi(2)
                    })
                    .sum::<f64>()
                    / nj;
                variances[j][d] = v.max(config.min_variance);
            }
        }

        if (ll - prev_ll).abs() <= config.tolerance * (1.0 + ll.abs()) {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;
    }

    let components = (0..k)
        .map(|j| {
            Ok(MixtureComponent {
                weight: mix_weights[j].max(1e-12),
                gaussian: Gaussian::diagonal(means[j].clone(), &variances[j])?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(EmFit {
        mixture: GaussianMixture::new(components)?,
        log_likelihood: prev_ll,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = EmConfig::default();
        assert!(fit_mixture(&[], &[], &cfg, &mut rng).is_err());
        assert!(fit_mixture(&[vec![0.0]], &[1.0, 2.0], &cfg, &mut rng).is_err());
        assert!(fit_mixture(&[vec![0.0]], &[0.0], &cfg, &mut rng).is_err());
        let bad_k = EmConfig {
            num_components: 0,
            ..EmConfig::default()
        };
        assert!(fit_mixture(&[vec![0.0]], &[1.0], &bad_k, &mut rng).is_err());
        // Ragged samples.
        assert!(fit_mixture(&[vec![0.0], vec![0.0, 1.0]], &[1.0, 1.0], &cfg, &mut rng).is_err());
    }

    #[test]
    fn single_component_fit_recovers_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Gaussian::diagonal(vec![0.4, -0.3], &[0.04, 0.09]).unwrap();
        let samples: Vec<Vector> = (0..5000).map(|_| g.sample(&mut rng)).collect();
        let weights = vec![1.0; samples.len()];
        let fit = fit_mixture(&samples, &weights, &EmConfig::default(), &mut rng).unwrap();
        let (_, comp) = fit.mixture.components().next().unwrap();
        assert!((comp.mean()[0] - 0.4).abs() < 0.02);
        assert!((comp.mean()[1] + 0.3).abs() < 0.02);
        assert!((comp.covariance()[(0, 0)] - 0.04).abs() < 0.01);
        assert!((comp.covariance()[(1, 1)] - 0.09).abs() < 0.02);
    }

    #[test]
    fn two_component_fit_separates_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Gaussian::isotropic(vec![-0.6, -0.6], 0.05).unwrap();
        let b = Gaussian::isotropic(vec![0.6, 0.6], 0.05).unwrap();
        let mut samples = Vec::new();
        for _ in 0..1000 {
            samples.push(a.sample(&mut rng));
            samples.push(b.sample(&mut rng));
        }
        let weights = vec![1.0; samples.len()];
        let cfg = EmConfig {
            num_components: 2,
            ..EmConfig::default()
        };
        let fit = fit_mixture(&samples, &weights, &cfg, &mut rng).unwrap();
        let mut means: Vec<f64> = fit.mixture.components().map(|(_, g)| g.mean()[0]).collect();
        means.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((means[0] + 0.6).abs() < 0.1, "means {means:?}");
        assert!((means[1] - 0.6).abs() < 0.1, "means {means:?}");
    }

    #[test]
    fn weighted_fit_biases_toward_heavier_points() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples = vec![vec![0.0], vec![1.0]];
        // Give the right-hand point nine times the weight of the left-hand one.
        let weights = vec![1.0, 9.0];
        let fit = fit_mixture(&samples, &weights, &EmConfig::default(), &mut rng).unwrap();
        let mean = fit.mixture.components().next().unwrap().1.mean()[0];
        assert!((mean - 0.9).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn log_likelihood_improves_with_more_components_on_bimodal_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Gaussian::isotropic(vec![-0.7], 0.05).unwrap();
        let b = Gaussian::isotropic(vec![0.7], 0.05).unwrap();
        let mut samples = Vec::new();
        for _ in 0..500 {
            samples.push(a.sample(&mut rng));
            samples.push(b.sample(&mut rng));
        }
        let weights = vec![1.0; samples.len()];
        let fit1 = fit_mixture(&samples, &weights, &EmConfig::default(), &mut rng).unwrap();
        let cfg2 = EmConfig {
            num_components: 2,
            ..EmConfig::default()
        };
        let fit2 = fit_mixture(&samples, &weights, &cfg2, &mut rng).unwrap();
        assert!(fit2.log_likelihood > fit1.log_likelihood);
    }
}
