//! Minimal dense linear algebra used by the Gaussian-mixture model.
//!
//! The weight-vector spaces in the paper are low dimensional (2–10 features),
//! so a straightforward `Vec<f64>`-backed implementation is both simpler and
//! faster than pulling in a general-purpose linear-algebra crate.

use serde::{Deserialize, Serialize};

use crate::{GmmError, Result};

/// A dense column vector of `f64` values.
pub type Vector = Vec<f64>;

/// Dot product of two equally sized vectors.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the shorter
/// length is used (consistent with `Iterator::zip`).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a vector.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two vectors.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    distance_sq(a, b).sqrt()
}

/// `a - b`, element-wise.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// `a + b`, element-wise.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `s * a`, element-wise scaling.
#[inline]
pub fn scale(a: &[f64], s: f64) -> Vector {
    a.iter().map(|x| x * s).collect()
}

/// A dense, row-major square matrix.
///
/// Only the operations needed by the Gaussian model are provided: symmetric
/// storage, Cholesky factorisation, forward substitution and matrix–vector
/// products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    dim: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `dim x dim` matrix filled with zeros.
    pub fn zeros(dim: usize) -> Self {
        Matrix {
            dim,
            data: vec![0.0; dim * dim],
        }
    }

    /// Creates an identity matrix of the given dimension.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// Returns an error if `data.len() != dim * dim`.
    pub fn from_rows(dim: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != dim * dim {
            return Err(GmmError::DimensionMismatch {
                expected: dim * dim,
                actual: data.len(),
            });
        }
        Ok(Matrix { dim, data })
    }

    /// Matrix dimension (number of rows = number of columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix–vector product `M * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vector> {
        if v.len() != self.dim {
            return Err(GmmError::DimensionMismatch {
                expected: self.dim,
                actual: v.len(),
            });
        }
        if self.dim == 0 {
            return Ok(Vec::new());
        }
        let out = self
            .data
            .chunks_exact(self.dim)
            .map(|row| dot(row, v))
            .collect();
        Ok(out)
    }

    /// Cholesky factorisation `M = L * L^T` for a symmetric positive-definite
    /// matrix; returns the lower-triangular factor `L`.
    pub fn cholesky(&self) -> Result<Matrix> {
        let n = self.dim;
        let mut l = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(GmmError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `L * x = b` by forward substitution, where `self` is lower
    /// triangular (e.g. a Cholesky factor).
    pub fn forward_substitute(&self, b: &[f64]) -> Result<Vector> {
        if b.len() != self.dim {
            return Err(GmmError::DimensionMismatch {
                expected: self.dim,
                actual: b.len(),
            });
        }
        let n = self.dim;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d == 0.0 {
                return Err(GmmError::NotPositiveDefinite);
            }
            x[i] = sum / d;
        }
        Ok(x)
    }

    /// Product of the diagonal entries (for a Cholesky factor this equals
    /// `sqrt(det(M))`).
    pub fn diagonal_product(&self) -> f64 {
        (0..self.dim).map(|i| self[(i, i)]).product()
    }

    /// Log of the determinant of `L * L^T` given that `self` is the Cholesky
    /// factor `L`.
    pub fn log_det_from_cholesky(&self) -> f64 {
        2.0 * (0..self.dim).map(|i| self[(i, i)].ln()).sum::<f64>()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.dim + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.dim + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_and_distance() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((distance_sq(&[1.0, 1.0], &[2.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_helpers() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 2.5), vec![2.5, 5.0]);
    }

    #[test]
    fn identity_mul_vec_is_noop() {
        let m = Matrix::identity(3);
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(m.mul_vec(&v).unwrap(), v);
    }

    #[test]
    fn mul_vec_dimension_mismatch() {
        let m = Matrix::identity(3);
        let err = m.mul_vec(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            GmmError::DimensionMismatch {
                expected: 3,
                actual: 2
            }
        ));
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let m = Matrix::identity(4);
        assert_eq!(m.cholesky().unwrap(), Matrix::identity(4));
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        // M = [[4, 2], [2, 3]]
        let m = Matrix::from_rows(2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = m.cholesky().unwrap();
        // Reconstruct L * L^T and compare.
        for i in 0..2 {
            for j in 0..2 {
                let mut v = 0.0;
                for k in 0..2 {
                    v += l[(i, k)] * l[(j, k)];
                }
                assert!((v - m[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix::from_rows(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(m.cholesky().unwrap_err(), GmmError::NotPositiveDefinite);
    }

    #[test]
    fn forward_substitution_solves_lower_triangular_system() {
        // L = [[2, 0], [1, 3]], b = [4, 10] -> x = [2, 8/3]
        let mut l = Matrix::zeros(2);
        l[(0, 0)] = 2.0;
        l[(1, 0)] = 1.0;
        l[(1, 1)] = 3.0;
        let x = l.forward_substitute(&[4.0, 10.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Matrix::from_rows(2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn diagonal_matrix_and_log_det() {
        let m = Matrix::diagonal(&[4.0, 9.0]);
        let l = m.cholesky().unwrap();
        assert!((l.diagonal_product() - 6.0).abs() < 1e-12);
        assert!((l.log_det_from_cholesky() - (36.0f64).ln()).abs() < 1e-12);
    }
}
