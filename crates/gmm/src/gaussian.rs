//! Multivariate Gaussian components.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::linalg::{dot, sub, Matrix, Vector};
use crate::normal::standard_normal_vector;
use crate::{GmmError, Result};

/// A multivariate Gaussian `N(mean, covariance)`.
///
/// The covariance Cholesky factor is computed eagerly at construction so that
/// sampling and density evaluation are cheap, which matters because the
/// samplers in `pkgrec-core` evaluate the prior density for every candidate
/// weight vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gaussian {
    mean: Vector,
    covariance: Matrix,
    /// Lower-triangular Cholesky factor of the covariance.
    cholesky: Matrix,
    /// Log of the normalisation constant: `-0.5 * (d*ln(2π) + ln|Σ|)`.
    log_norm: f64,
}

impl Gaussian {
    /// Creates a Gaussian from a mean vector and a full covariance matrix.
    ///
    /// Returns [`GmmError::NotPositiveDefinite`] if the covariance cannot be
    /// Cholesky factorised and [`GmmError::DimensionMismatch`] if the mean and
    /// covariance dimensions disagree.
    pub fn new(mean: Vector, covariance: Matrix) -> Result<Self> {
        if covariance.dim() != mean.len() {
            return Err(GmmError::DimensionMismatch {
                expected: mean.len(),
                actual: covariance.dim(),
            });
        }
        let cholesky = covariance.cholesky()?;
        let d = mean.len() as f64;
        let log_det = cholesky.log_det_from_cholesky();
        let log_norm = -0.5 * (d * (2.0 * std::f64::consts::PI).ln() + log_det);
        Ok(Gaussian {
            mean,
            covariance,
            cholesky,
            log_norm,
        })
    }

    /// Creates an isotropic Gaussian `N(mean, sigma^2 * I)`.
    pub fn isotropic(mean: Vector, sigma: f64) -> Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(GmmError::NotPositiveDefinite);
        }
        let dim = mean.len();
        let cov = Matrix::diagonal(&vec![sigma * sigma; dim]);
        Gaussian::new(mean, cov)
    }

    /// Creates a diagonal-covariance Gaussian from per-dimension variances.
    pub fn diagonal(mean: Vector, variances: &[f64]) -> Result<Self> {
        if variances.len() != mean.len() {
            return Err(GmmError::DimensionMismatch {
                expected: mean.len(),
                actual: variances.len(),
            });
        }
        Gaussian::new(mean, Matrix::diagonal(variances))
    }

    /// Dimensionality of the Gaussian.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The covariance matrix.
    pub fn covariance(&self) -> &Matrix {
        &self.covariance
    }

    /// Draws one sample `mean + L * z` where `z ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let z = standard_normal_vector(rng, self.dim());
        let lz = self
            .cholesky
            .mul_vec(&z)
            .expect("cholesky factor has the gaussian's dimension");
        self.mean
            .iter()
            .zip(lz.iter())
            .map(|(m, x)| m + x)
            .collect()
    }

    /// Log probability density at `x`.
    pub fn log_pdf(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim() {
            return Err(GmmError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        let diff = sub(x, &self.mean);
        // Solve L y = diff; then (x-μ)^T Σ^{-1} (x-μ) = ||y||².
        let y = self.cholesky.forward_substitute(&diff)?;
        let mahalanobis_sq = dot(&y, &y);
        Ok(self.log_norm - 0.5 * mahalanobis_sq)
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: &[f64]) -> Result<f64> {
        Ok(self.log_pdf(x)?.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_gaussian_pdf_at_origin() {
        let g = Gaussian::isotropic(vec![0.0, 0.0], 1.0).unwrap();
        // 1 / (2π) ≈ 0.15915
        assert!((g.pdf(&[0.0, 0.0]).unwrap() - 0.159_154_94).abs() < 1e-6);
    }

    #[test]
    fn univariate_pdf_matches_closed_form() {
        let g = Gaussian::isotropic(vec![1.0], 2.0).unwrap();
        let x = 2.5;
        let expected = (-((x - 1.0f64) * (x - 1.0)) / (2.0 * 4.0)).exp()
            / (2.0 * std::f64::consts::PI * 4.0).sqrt();
        assert!((g.pdf(&[x]).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let g = Gaussian::isotropic(vec![0.0, 0.0], 1.0).unwrap();
        assert!(g.pdf(&[0.0]).is_err());
        assert!(Gaussian::new(vec![0.0], Matrix::identity(2)).is_err());
        assert!(Gaussian::diagonal(vec![0.0, 0.0], &[1.0]).is_err());
    }

    #[test]
    fn isotropic_rejects_bad_sigma() {
        assert!(Gaussian::isotropic(vec![0.0], 0.0).is_err());
        assert!(Gaussian::isotropic(vec![0.0], -1.0).is_err());
        assert!(Gaussian::isotropic(vec![0.0], f64::NAN).is_err());
    }

    #[test]
    fn samples_have_expected_mean_and_covariance() {
        let g = Gaussian::diagonal(vec![1.0, -2.0], &[0.25, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<Vec<f64>> = (0..n).map(|_| g.sample(&mut rng)).collect();
        for d in 0..2 {
            let mean = samples.iter().map(|s| s[d]).sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s[d] - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - g.mean()[d]).abs() < 0.03, "dim {d} mean {mean}");
            assert!(
                (var - g.covariance()[(d, d)]).abs() / g.covariance()[(d, d)] < 0.05,
                "dim {d} var {var}"
            );
        }
    }

    #[test]
    fn correlated_gaussian_sampling_preserves_correlation_sign() {
        let cov = Matrix::from_rows(2, vec![1.0, 0.8, 0.8, 1.0]).unwrap();
        let g = Gaussian::new(vec![0.0, 0.0], cov).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut cov_acc = 0.0;
        for _ in 0..n {
            let s = g.sample(&mut rng);
            cov_acc += s[0] * s[1];
        }
        let empirical = cov_acc / n as f64;
        assert!(
            (empirical - 0.8).abs() < 0.05,
            "empirical covariance {empirical}"
        );
    }

    #[test]
    fn log_pdf_is_maximised_at_mean() {
        let g = Gaussian::diagonal(vec![0.3, -0.4, 0.1], &[0.1, 0.2, 0.3]).unwrap();
        let at_mean = g.log_pdf(&[0.3, -0.4, 0.1]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = g.sample(&mut rng);
            assert!(g.log_pdf(&x).unwrap() <= at_mean + 1e-12);
        }
    }
}
