//! Manifest smoke test: samples from the default Gaussian-mixture prior and
//! runs the ENS diagnostic through the public API.

use pkgrec_gmm::{effective_number_of_samples_from_weights, GaussianMixture};
use rand::SeedableRng;

#[test]
fn prior_sampling_smoke() {
    let prior = GaussianMixture::default_prior(3, 2, 0.5).expect("valid prior");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let samples = prior.sample_n(&mut rng, 64);
    assert_eq!(samples.len(), 64);
    assert!(samples.iter().all(|s| s.len() == 3));

    let ens = effective_number_of_samples_from_weights(&vec![1.0; 64]);
    assert!((ens - 64.0).abs() < 1e-9);
}
