//! Session identities, configurations and the session factory.
//!
//! A [`SessionConfig`] is everything needed to (re)build a session from
//! nothing: the catalog, the profile, φ, the recommender recipe
//! ([`RecommenderSpec`]) and the session's deterministic RNG seed.  It is
//! plain serde data, so it travels inside journal `Created` events and any
//! store can rebuild the exact session from it.
//!
//! ## Deterministic per-operation randomness
//!
//! The store never threads one long-lived RNG through a session.  Instead
//! every state-changing operation (present / feedback / recommend) draws a
//! fresh [`StdRng`] derived from `(seed, ops)` — the session seed mixed with
//! the number of operations already applied ([`op_rng`]).  Three properties
//! fall out of this single decision:
//!
//! * **replayable** — a journal that records the operation sequence can
//!   re-derive every RNG stream and reconstruct the session bit-identically,
//! * **shard/thread independent** — no RNG state is shared across sessions,
//!   so scheduling order cannot change any session's outcome,
//! * **spill-transparent** — a session restored from its snapshot resumes at
//!   the recorded operation count and therefore sees the same streams the
//!   uninterrupted session would have.

use pkgrec_baselines::BaselineSpec;
use pkgrec_core::{
    Catalog, CoreError, EngineConfig, Profile, Recommender, RecommenderEngine, Result,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifies one session within a [`SessionStore`](crate::SessionStore).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// SplitMix64 finaliser used to spread session ids across shards and to
/// derive per-operation RNG seeds (deterministic, process-independent).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a session id lives on — a pure function of the id, so a journal
/// written by an `n`-shard store can be adopted by an `m`-shard store.
pub fn shard_of(id: SessionId, shards: usize) -> usize {
    (mix64(id.0) % shards as u64) as usize
}

/// The RNG handed to a session's operation number `ops` (0-based).  Every
/// store drive of the same session derives the identical stream, which is
/// what makes journal replay bit-identical.
pub fn op_rng(seed: u64, ops: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ mix64(ops)))
}

/// The RNG driving a session's [`SimulatedUser`](pkgrec_core::SimulatedUser)
/// in the serving loop — salted away from [`op_rng`] so user noise and
/// session exploration never share a stream.
pub fn user_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ 0xA5A5_5A5A_0F0F_F0F0))
}

/// Content fingerprint of a catalog, used by the durable journal's intern
/// table: equal catalogs (same feature names, same rows, bit for bit) hash
/// equal, and the hash is process-independent (pure SplitMix64 folding, no
/// `std::hash` randomness), so an intern table rebuilt during recovery
/// assigns the same buckets the writer did.
pub fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    let mut acc = mix64(0xCA7A_1069_0000_0000 ^ catalog.len() as u64);
    for name in catalog.feature_names() {
        for byte in name.as_bytes() {
            acc = mix64(acc ^ u64::from(*byte));
        }
        acc = mix64(acc ^ 0xFE);
    }
    for (_, row) in catalog.iter() {
        for value in row {
            acc = mix64(acc ^ value.to_bits());
        }
    }
    acc
}

/// The recommender recipe of a session: the paper's sample-maintenance
/// engine or one of the baseline adapters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecommenderSpec {
    /// The elicitation engine with the given configuration.
    Engine(EngineConfig),
    /// A baseline adapter built through
    /// [`BaselineSpec::build`](pkgrec_baselines::BaselineSpec::build).
    Baseline(BaselineSpec),
}

impl RecommenderSpec {
    /// The label the built session reports through [`Recommender::state`].
    pub fn label(&self) -> &'static str {
        match self {
            RecommenderSpec::Engine(_) => "engine",
            RecommenderSpec::Baseline(spec) => spec.label(),
        }
    }

    /// Whether sessions of this spec support O(1) snapshot spill
    /// (engine sessions do; baselines are restored by journal replay).
    pub fn supports_snapshot(&self) -> bool {
        matches!(self, RecommenderSpec::Engine(_))
    }
}

/// Everything needed to build (or rebuild) one session from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The item catalog the session recommends from.  Shared behind an
    /// [`Arc`](std::sync::Arc): a fleet of sessions over one storefront
    /// clones a pointer, not the catalog — the config is copied into every
    /// journal `Created` event, so by-value storage would multiply catalog
    /// memory by the session count.  (Serialisation stays transparent; each
    /// deserialised config gets its own fresh `Arc`.)
    pub catalog: std::sync::Arc<Catalog>,
    /// The aggregate feature profile.
    pub profile: Profile,
    /// The maximum package size φ.
    pub max_package_size: usize,
    /// The recommender recipe.
    pub spec: RecommenderSpec,
    /// Deterministic session seed; all per-operation RNG streams derive
    /// from it (see [`op_rng`]).
    pub seed: u64,
}

impl SessionConfig {
    /// Builds the live session this configuration describes.
    pub fn build(&self) -> Result<LiveSession> {
        match &self.spec {
            RecommenderSpec::Engine(config) => Ok(LiveSession::Engine(Box::new(
                RecommenderEngine::builder(self.catalog.as_ref().clone(), self.profile.clone())
                    .max_package_size(self.max_package_size)
                    .config(config.clone())
                    .build()?,
            ))),
            RecommenderSpec::Baseline(spec) => Ok(LiveSession::Baseline(spec.build(
                self.catalog.as_ref().clone(),
                self.profile.clone(),
                self.max_package_size,
            )?)),
        }
    }
}

/// A materialised, in-memory session.
///
/// Baseline sessions are held as boxed [`Recommender`] trait objects; the
/// engine keeps its concrete type because the [`Recommender`] trait is
/// deliberately snapshot-free (not every recommender can serialise itself)
/// while the store's spill path needs
/// [`RecommenderEngine::snapshot`](pkgrec_core::RecommenderEngine::snapshot).
pub enum LiveSession {
    /// The paper's sample-maintenance engine (snapshot-capable).
    Engine(Box<RecommenderEngine>),
    /// A baseline adapter behind the object-safe trait.
    Baseline(Box<dyn Recommender + Send>),
}

impl std::fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LiveSession({})", self.inspect().state().label)
    }
}

impl LiveSession {
    /// The session as a mutable trait object — the form every driver uses.
    pub fn recommender(&mut self) -> &mut dyn Recommender {
        match self {
            LiveSession::Engine(engine) => engine.as_mut(),
            LiveSession::Baseline(session) => session.as_mut(),
        }
    }

    /// The session as a shared trait object (inspection only).
    pub fn inspect(&self) -> &dyn Recommender {
        match self {
            LiveSession::Engine(engine) => engine.as_ref(),
            LiveSession::Baseline(session) => session.as_ref(),
        }
    }

    /// Serialises the session as a [`SessionSnapshot`](pkgrec_core::SessionSnapshot)
    /// JSON string, or an error for baseline sessions, whose only durable
    /// form is their journal.
    pub fn snapshot_json(&self) -> Result<String> {
        match self {
            LiveSession::Engine(engine) => serde_json::to_string(&engine.snapshot())
                .map_err(|e| CoreError::InvalidConfig(format!("snapshot serialisation: {e}"))),
            LiveSession::Baseline(session) => Err(CoreError::InvalidConfig(format!(
                "{} sessions have no snapshot form; restore them by replaying their journal",
                session.state().label
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_baselines::{BaselineSpec, EmRefitConfig};

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
        ])
        .unwrap()
    }

    fn engine_config() -> SessionConfig {
        SessionConfig {
            catalog: std::sync::Arc::new(catalog()),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 20,
                ..EngineConfig::default()
            }),
            seed: 7,
        }
    }

    #[test]
    fn sharding_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for id in 0..50u64 {
                let s = shard_of(SessionId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(SessionId(id), shards));
            }
        }
        // Sessions actually spread (not all on one shard).
        let hits: std::collections::HashSet<usize> =
            (0..50u64).map(|id| shard_of(SessionId(id), 4)).collect();
        assert!(hits.len() > 1);
    }

    #[test]
    fn op_rng_streams_are_reproducible_and_distinct() {
        use rand::RngCore;
        assert_eq!(op_rng(3, 0).next_u64(), op_rng(3, 0).next_u64());
        assert_ne!(op_rng(3, 0).next_u64(), op_rng(3, 1).next_u64());
        assert_ne!(op_rng(3, 0).next_u64(), op_rng(4, 0).next_u64());
        assert_ne!(op_rng(3, 0).next_u64(), user_rng(3).next_u64());
    }

    #[test]
    fn session_config_round_trips_and_builds() {
        let config = engine_config();
        let json = serde_json::to_string(&config).unwrap();
        let back: SessionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(config.spec.label(), "engine");
        assert!(config.spec.supports_snapshot());

        let mut live = config.build().unwrap();
        assert_eq!(live.inspect().state().label, "engine");
        assert!(live.snapshot_json().is_ok());
        let mut rng = op_rng(config.seed, 0);
        assert_eq!(live.recommender().present(&mut rng).unwrap().len(), 4);
    }

    #[test]
    fn baseline_config_builds_without_snapshot_support() {
        let config = SessionConfig {
            spec: RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
                k: 2,
                num_random: 1,
                num_samples: 15,
                samples_per_refit: 30,
                ..EmRefitConfig::default()
            })),
            ..engine_config()
        };
        assert!(!config.spec.supports_snapshot());
        assert_eq!(config.spec.label(), "em-refit");
        let live = config.build().unwrap();
        assert!(matches!(
            live.snapshot_json(),
            Err(CoreError::InvalidConfig(_))
        ));
    }
}
