//! The append-only session journal and its bit-identical replay.
//!
//! Following the log-structured persistence design of LogBase (Vo et al.,
//! PVLDB 2012), the journal — not the in-memory session — is the durable
//! form of every session: each state-changing store operation appends one
//! [`SessionEvent`], and [`Journal::replay`] folds a session's events back
//! into a [`LiveSession`] whose state is *bit-identical* to the live one
//! (proven by the `serving_store` property suite).  Replay works because
//! every operation's RNG stream derives from `(seed, ops)` alone
//! ([`crate::config::op_rng`]), so re-running the recorded operation
//! sequence re-derives the exact random choices of the original run.
//!
//! [`SessionEvent::Snapshot`] events are checkpoints: when the store spills
//! an engine session (capacity eviction or an explicit
//! [`SessionStore::snapshot`](crate::SessionStore::snapshot) call), it
//! appends the session's [`SessionSnapshot`](pkgrec_core::SessionSnapshot)
//! JSON together with the operation count, and replay fast-forwards from the
//! latest checkpoint instead of re-running the whole history.  Baseline
//! sessions have no snapshot form, so their replay always starts from
//! `Created` — the journal *is* their snapshot.

use pkgrec_core::{CoreError, Feedback, Package, RecommenderEngine, Result};
use serde::{Deserialize, Serialize};

use crate::config::{op_rng, LiveSession, SessionConfig, SessionId};

/// One journaled session event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The session was created from this configuration (always the first
    /// event of a session).
    Created {
        /// The full session recipe, sufficient to rebuild from nothing.
        config: SessionConfig,
    },
    /// One `present` operation ran (its RNG stream derives from the
    /// operation index, so the shown list is reproducible and not stored).
    Presented,
    /// One `record_feedback` operation ran against the last presented list.
    Feedback(Feedback),
    /// One standalone `recommend` operation ran (it may lazily refill a
    /// sample pool, so it counts as a state-changing operation).
    Recommended,
    /// A spill checkpoint: the session's snapshot JSON at `ops` operations.
    Snapshot {
        /// [`SessionSnapshot`](pkgrec_core::SessionSnapshot) as JSON.
        json: String,
        /// Operations applied before the checkpoint was taken.
        ops: u64,
        /// The last presented list at checkpoint time (empty if none) —
        /// kept so a fast-forwarded session can still accept feedback.
        last_shown: Vec<Package>,
    },
}

/// One journal record: which session, which event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The session the event belongs to.
    pub session: SessionId,
    /// The event.
    pub event: SessionEvent,
}

/// A session rebuilt by [`Journal::replay`], together with the bookkeeping
/// the store needs to resume driving it.
pub struct ReplayedSession {
    /// The session configuration from the `Created` event.
    pub config: SessionConfig,
    /// The reconstructed session, bit-identical to the live one.
    pub session: LiveSession,
    /// Operations applied so far (the next operation's RNG index).
    pub ops: u64,
    /// The last presented list (empty if the session never presented).
    pub last_shown: Vec<Package>,
}

/// An append-only log of session events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    records: Vec<JournalRecord>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends one event (the only mutation a journal supports).
    pub fn append(&mut self, session: SessionId, event: SessionEvent) {
        self.records.push(JournalRecord { session, event });
    }

    /// All records, in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The events of one session, in order.
    pub fn events_for(&self, id: SessionId) -> Vec<&SessionEvent> {
        self.records
            .iter()
            .filter(|r| r.session == id)
            .map(|r| &r.event)
            .collect()
    }

    /// Appends every record of `other` (journal merge, e.g. when exporting
    /// a store's per-shard journals as one log).
    pub fn extend_from(&mut self, other: &Journal) {
        self.records.extend(other.records.iter().cloned());
    }

    /// Reconstructs a session from its journaled history.
    ///
    /// Replay starts from the latest [`SessionEvent::Snapshot`] checkpoint if
    /// one exists (engine sessions), otherwise from the [`SessionEvent::Created`]
    /// configuration, and re-applies every later operation with its
    /// `(seed, ops)`-derived RNG.  The result is bit-identical to the live
    /// session the journal describes.
    pub fn replay(&self, id: SessionId) -> Result<ReplayedSession> {
        Self::replay_events(id, &self.events_for(id))
    }

    /// [`Journal::replay`] over pre-indexed record positions — the session
    /// store keeps a per-session offset index so rehydration reads exactly
    /// the session's own records instead of scanning the whole shard log.
    pub fn replay_at(&self, id: SessionId, positions: &[usize]) -> Result<ReplayedSession> {
        let events = positions
            .iter()
            .map(|&i| {
                self.records
                    .get(i)
                    .filter(|record| record.session == id)
                    .map(|record| &record.event)
                    .ok_or_else(|| {
                        CoreError::InvalidConfig(format!(
                            "journal index for {id} is corrupt at record {i}"
                        ))
                    })
            })
            .collect::<Result<Vec<&SessionEvent>>>()?;
        Self::replay_events(id, &events)
    }

    fn replay_events(id: SessionId, events: &[&SessionEvent]) -> Result<ReplayedSession> {
        if events.is_empty() {
            return Err(CoreError::UnknownSession(id.0));
        }
        let config = match events[0] {
            SessionEvent::Created { config } => config.clone(),
            other => {
                return Err(CoreError::InvalidConfig(format!(
                    "journal for {id} starts with {other:?} instead of Created"
                )))
            }
        };

        // Fast-forward from the latest checkpoint when one exists.
        let checkpoint = events
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, event)| match event {
                SessionEvent::Snapshot {
                    json,
                    ops,
                    last_shown,
                } => Some((i, json, *ops, last_shown.clone())),
                _ => None,
            });
        let (start, mut session, mut ops, mut last_shown) = match checkpoint {
            Some((i, json, ops, last_shown)) => {
                let snapshot = serde_json::from_str(json).map_err(|e| {
                    CoreError::InvalidConfig(format!("corrupt snapshot checkpoint for {id}: {e}"))
                })?;
                let engine = RecommenderEngine::restore(snapshot)?;
                (
                    i + 1,
                    LiveSession::Engine(Box::new(engine)),
                    ops,
                    last_shown,
                )
            }
            None => (1, config.build()?, 0, Vec::new()),
        };

        for event in &events[start..] {
            match event {
                SessionEvent::Presented => {
                    let mut rng = op_rng(config.seed, ops);
                    last_shown = session.recommender().present(&mut rng)?;
                    ops += 1;
                }
                SessionEvent::Feedback(feedback) => {
                    if last_shown.is_empty() {
                        return Err(CoreError::InvalidConfig(format!(
                            "journal for {id} records feedback before any presentation"
                        )));
                    }
                    let mut rng = op_rng(config.seed, ops);
                    session
                        .recommender()
                        .record_feedback(&last_shown, *feedback, &mut rng)?;
                    ops += 1;
                }
                SessionEvent::Recommended => {
                    let mut rng = op_rng(config.seed, ops);
                    session.recommender().recommend(&mut rng)?;
                    ops += 1;
                }
                SessionEvent::Snapshot { .. } => {
                    // An older checkpoint before the one we started from —
                    // purely informational during replay.
                }
                SessionEvent::Created { .. } => {
                    return Err(CoreError::InvalidConfig(format!(
                        "journal for {id} contains a second Created event"
                    )));
                }
            }
        }
        Ok(ReplayedSession {
            config,
            session,
            ops,
            last_shown,
        })
    }

    /// The checkpoint-anchored compaction of this journal: for every
    /// session it keeps the `Created` event, the *latest* `Snapshot`
    /// checkpoint (if any) and every event after it, dropping the events the
    /// checkpoint supersedes.  Global record order is preserved, so replay
    /// over the compacted journal reconstructs every session bit-identically
    /// ([`Journal::replay`] fast-forwards from the latest checkpoint anyway
    /// — compaction merely deletes what fast-forward already skips).
    ///
    /// Returns the compacted journal and the number of records dropped.
    pub fn compacted(&self) -> (Journal, usize) {
        use std::collections::HashMap;
        let mut latest_snapshot: HashMap<SessionId, usize> = HashMap::new();
        for (i, record) in self.records.iter().enumerate() {
            if matches!(record.event, SessionEvent::Snapshot { .. }) {
                latest_snapshot.insert(record.session, i);
            }
        }
        let records: Vec<JournalRecord> = self
            .records
            .iter()
            .enumerate()
            .filter(|(i, record)| match latest_snapshot.get(&record.session) {
                None => true, // no checkpoint: the full history is live
                Some(&anchor) => match record.event {
                    SessionEvent::Created { .. } => true,
                    SessionEvent::Snapshot { .. } => *i == anchor,
                    _ => *i > anchor,
                },
            })
            .map(|(_, record)| record.clone())
            .collect();
        let dropped = self.records.len() - records.len();
        (Journal { records }, dropped)
    }

    /// The session ids with a `Created` event, in creation order.
    pub fn created_sessions(&self) -> Vec<(SessionId, &SessionConfig)> {
        self.records
            .iter()
            .filter_map(|r| match &r.event {
                SessionEvent::Created { config } => Some((r.session, config)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{user_rng, RecommenderSpec};
    use pkgrec_core::{
        AggregationContext, Catalog, EngineConfig, LinearUtility, Profile, SimulatedUser,
    };

    fn config(seed: u64) -> SessionConfig {
        SessionConfig {
            catalog: std::sync::Arc::new(
                Catalog::from_rows(vec![
                    vec![0.6, 0.2],
                    vec![0.4, 0.4],
                    vec![0.2, 0.4],
                    vec![0.9, 0.8],
                    vec![0.3, 0.7],
                ])
                .unwrap(),
            ),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 20,
                ..EngineConfig::default()
            }),
            seed,
        }
    }

    /// Drives a fresh session through the journaled operation sequence the
    /// same way the store does (clicks follow a hidden utility, so every
    /// recorded preference set stays satisfiable), returning the journal and
    /// the live session.
    fn drive(rounds: usize, seed: u64) -> (Journal, LiveSession, u64) {
        let id = SessionId(1);
        let config = config(seed);
        let context = AggregationContext::new(config.profile.clone(), &config.catalog, 2).unwrap();
        let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
        let mut journal = Journal::new();
        journal.append(
            id,
            SessionEvent::Created {
                config: config.clone(),
            },
        );
        let mut session = config.build().unwrap();
        let mut ops = 0u64;
        for _ in 0..rounds {
            let mut rng = op_rng(seed, ops);
            let shown = session.recommender().present(&mut rng).unwrap();
            ops += 1;
            journal.append(id, SessionEvent::Presented);
            let index = user
                .choose(&config.catalog, &shown, &mut user_rng(seed))
                .unwrap();
            let feedback = Feedback::Click { index };
            let mut rng = op_rng(seed, ops);
            session
                .recommender()
                .record_feedback(&shown, feedback, &mut rng)
                .unwrap();
            ops += 1;
            journal.append(id, SessionEvent::Feedback(feedback));
        }
        (journal, session, ops)
    }

    #[test]
    fn replay_reconstructs_the_live_session_bit_identically() {
        let (journal, live, ops) = drive(3, 11);
        let replayed = journal.replay(SessionId(1)).unwrap();
        assert_eq!(replayed.ops, ops);
        let (LiveSession::Engine(live), LiveSession::Engine(replica)) = (&live, &replayed.session)
        else {
            panic!("engine sessions expected");
        };
        assert_eq!(live.snapshot(), replica.snapshot());
    }

    #[test]
    fn replay_fast_forwards_from_the_latest_checkpoint() {
        let (mut journal, live, ops) = drive(2, 23);
        let LiveSession::Engine(engine) = &live else {
            panic!("engine session expected");
        };
        let json = serde_json::to_string(&engine.snapshot()).unwrap();
        journal.append(
            SessionId(1),
            SessionEvent::Snapshot {
                json,
                ops,
                last_shown: Vec::new(),
            },
        );
        let replayed = journal.replay(SessionId(1)).unwrap();
        assert_eq!(replayed.ops, ops);
        let LiveSession::Engine(replica) = &replayed.session else {
            panic!("engine session expected");
        };
        assert_eq!(engine.snapshot(), replica.snapshot());
    }

    #[test]
    fn malformed_journals_are_rejected() {
        let journal = Journal::new();
        assert!(matches!(
            journal.replay(SessionId(9)),
            Err(CoreError::UnknownSession(9))
        ));

        let mut headless = Journal::new();
        headless.append(SessionId(2), SessionEvent::Presented);
        assert!(matches!(
            headless.replay(SessionId(2)),
            Err(CoreError::InvalidConfig(_))
        ));

        let mut blind_feedback = Journal::new();
        blind_feedback.append(SessionId(3), SessionEvent::Created { config: config(5) });
        blind_feedback.append(
            SessionId(3),
            SessionEvent::Feedback(Feedback::Click { index: 0 }),
        );
        assert!(matches!(
            blind_feedback.replay(SessionId(3)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn compaction_anchors_on_the_latest_checkpoint_and_preserves_replay() {
        // Without a checkpoint the whole history is live: nothing to drop.
        let (journal, _, _) = drive(2, 43);
        let (same, dropped) = journal.compacted();
        assert_eq!(dropped, 0);
        assert_eq!(same, journal);

        // With a checkpoint, compaction keeps Created + the latest Snapshot
        // and drops the operations the checkpoint supersedes — and replay
        // over the compacted journal is bit-identical.
        let (mut journal, live, ops) = drive(3, 41);
        let LiveSession::Engine(engine) = &live else {
            panic!("engine session expected");
        };
        let json = serde_json::to_string(&engine.snapshot()).unwrap();
        journal.append(
            SessionId(1),
            SessionEvent::Snapshot {
                json,
                ops,
                last_shown: Vec::new(),
            },
        );
        let (compacted, dropped) = journal.compacted();
        assert_eq!(dropped, 6, "three present/feedback rounds superseded");
        assert_eq!(compacted.len(), 2, "Created + latest checkpoint remain");
        let a = journal.replay(SessionId(1)).unwrap();
        let b = compacted.replay(SessionId(1)).unwrap();
        assert_eq!(a.ops, b.ops);
        let (LiveSession::Engine(a), LiveSession::Engine(b)) = (&a.session, &b.session) else {
            panic!("engine sessions expected");
        };
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn journal_serde_round_trips() {
        let (journal, _, _) = drive(2, 31);
        let json = serde_json::to_string(&journal).unwrap();
        let back: Journal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, journal);
        assert_eq!(back.created_sessions().len(), 1);
        assert_eq!(back.events_for(SessionId(1)).len(), 5);
    }
}
