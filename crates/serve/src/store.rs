//! The sharded, journal-backed session store.
//!
//! A [`SessionStore`] owns `N` [`Shard`]s; every session hashes to one shard
//! by its [`SessionId`] ([`shard_of`]), and a shard is a self-contained unit:
//! its sessions, their journal, its LRU clock and its counters.  Shards never
//! share state, which is what lets the serving loop drive them from separate
//! OS threads with plain `&mut` splitting — no locks anywhere.
//!
//! ## Capacity and spill
//!
//! Each shard keeps at most `capacity_per_shard` sessions *live* in memory.
//! Touching a session beyond that evicts the shard's least-recently-used
//! live session: engine sessions spill to a [`SessionEvent::Snapshot`]
//! checkpoint in the journal (O(session) serialisation, O(1) future replay);
//! baseline sessions simply drop their in-memory form, because the journal
//! already holds everything needed to rebuild them.  Spilled sessions stay
//! addressable — the next operation rehydrates them through
//! [`Journal::replay`], bit-identically.

use std::collections::HashMap;

use pkgrec_core::{
    CoreError, Feedback, Package, RankedPackage, Recommender, RecommenderState, Result,
};
use serde::{Deserialize, Serialize};

use crate::config::{op_rng, shard_of, LiveSession, SessionConfig, SessionId};
use crate::journal::{Journal, SessionEvent};

/// Shape of a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Number of shards (parallelism grain of the serving loop).
    pub shards: usize,
    /// Maximum number of *live* sessions per shard; the store holds any
    /// number of sessions overall, spilling the least recently used ones.
    pub capacity_per_shard: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            capacity_per_shard: 1024,
        }
    }
}

impl StoreConfig {
    /// Validates the shape (both knobs must be at least 1).
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig(
                "a session store needs at least one shard".into(),
            ));
        }
        if self.capacity_per_shard == 0 {
            return Err(CoreError::InvalidConfig(
                "capacity_per_shard must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Store observability counters (summed across shards by
/// [`SessionStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Sessions created.
    pub created: usize,
    /// Operations that found their session live in memory.
    pub hits: usize,
    /// Operations that had to rehydrate a spilled session (journal replay).
    pub restores: usize,
    /// Sessions spilled by capacity eviction or explicit `evict`.
    pub evictions: usize,
    /// Snapshot checkpoints written to the journal.
    pub snapshots: usize,
    /// Journal events appended (all kinds).
    pub journal_events: usize,
    /// Operations that failed mid-mutation and discarded the live session
    /// so the journal stays the source of truth (see the op methods).
    pub rollbacks: usize,
}

impl StoreStats {
    /// Sums another shard's counters into this one.
    pub fn merge(&mut self, other: &StoreStats) {
        self.created += other.created;
        self.hits += other.hits;
        self.restores += other.restores;
        self.evictions += other.evictions;
        self.snapshots += other.snapshots;
        self.journal_events += other.journal_events;
        self.rollbacks += other.rollbacks;
    }
}

/// One session's store entry: its recipe, its (live or spilled) state and
/// the drive bookkeeping.
struct SessionEntry {
    config: SessionConfig,
    live: Option<LiveSession>,
    /// Operations applied so far — the next operation's RNG index.
    ops: u64,
    /// The list returned by the session's latest `present` (empty before
    /// the first one); feedback is validated against it.
    last_shown: Vec<Package>,
    /// LRU stamp from the owning shard's clock.
    last_used: u64,
}

/// One shard: a self-contained map of sessions plus their journal.
pub struct Shard {
    sessions: HashMap<SessionId, SessionEntry>,
    journal: Journal,
    /// Per-session record offsets into `journal` — rehydration replays from
    /// the indexed positions instead of scanning the whole shard log, so a
    /// restore costs O(session history), not O(shard history).
    event_index: HashMap<SessionId, Vec<usize>>,
    capacity: usize,
    /// Maintained count of entries with a live session, so capacity checks
    /// never rescan the shard.
    live_sessions: usize,
    clock: u64,
    stats: StoreStats,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            sessions: HashMap::new(),
            journal: Journal::new(),
            event_index: HashMap::new(),
            capacity,
            live_sessions: 0,
            clock: 0,
            stats: StoreStats::default(),
        }
    }

    fn append_event(&mut self, id: SessionId, event: SessionEvent) {
        self.journal.append(id, event);
        self.event_index
            .entry(id)
            .or_default()
            .push(self.journal.len() - 1);
        self.stats.journal_events += 1;
    }

    /// Discards a live session whose operation failed partway: the journal
    /// never recorded the operation, so the in-memory state may have drifted
    /// from it (e.g. a click whose pool maintenance exhausted the sampler
    /// after some preferences were already absorbed).  Dropping the live
    /// form makes the journal authoritative again — the next touch rehydrates
    /// the exact pre-operation state.
    fn rollback(&mut self, id: SessionId) {
        if let Some(entry) = self.sessions.get_mut(&id) {
            if entry.live.take().is_some() {
                self.live_sessions -= 1;
            }
            self.stats.rollbacks += 1;
        }
    }

    fn entry(&self, id: SessionId) -> Result<&SessionEntry> {
        self.sessions
            .get(&id)
            .ok_or(CoreError::UnknownSession(id.0))
    }

    fn touch(&mut self, id: SessionId) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.sessions.get_mut(&id) {
            entry.last_used = clock;
        }
    }

    fn live_count(&self) -> usize {
        debug_assert_eq!(
            self.live_sessions,
            self.sessions.values().filter(|e| e.live.is_some()).count(),
            "the maintained live-session counter tracks the map"
        );
        self.live_sessions
    }

    /// Spills the least-recently-used live session other than `keep`,
    /// returning whether a victim existed.
    fn evict_lru(&mut self, keep: Option<SessionId>) -> Result<bool> {
        let victim = self
            .sessions
            .iter()
            .filter(|(id, entry)| entry.live.is_some() && Some(**id) != keep)
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(id, _)| *id);
        match victim {
            Some(id) => self.spill(id).map(|()| true),
            None => Ok(false),
        }
    }

    /// Writes a `Snapshot` checkpoint for a snapshot-capable session into
    /// the journal — the one checkpoint recipe shared by capacity spills
    /// and explicit [`SessionStore::snapshot`] calls.
    fn write_checkpoint(&mut self, id: SessionId, live: &LiveSession) -> Result<String> {
        let entry = self.entry(id)?;
        let json = live.snapshot_json()?;
        let ops = entry.ops;
        let last_shown = entry.last_shown.clone();
        self.stats.snapshots += 1;
        self.append_event(
            id,
            SessionEvent::Snapshot {
                json: json.clone(),
                ops,
                last_shown,
            },
        );
        Ok(json)
    }

    /// Spills one live session: engines checkpoint their snapshot into the
    /// journal, baselines rely on replay-from-`Created`.
    fn spill(&mut self, id: SessionId) -> Result<()> {
        let entry = self
            .sessions
            .get_mut(&id)
            .ok_or(CoreError::UnknownSession(id.0))?;
        let snapshot_capable = entry.config.spec.supports_snapshot();
        let Some(live) = entry.live.take() else {
            return Ok(()); // already spilled
        };
        self.live_sessions -= 1;
        if snapshot_capable {
            self.write_checkpoint(id, &live)?;
        }
        self.stats.evictions += 1;
        Ok(())
    }

    /// Makes `id` live, replaying its journal if it was spilled, and evicts
    /// down to capacity around it.
    pub(crate) fn ensure_live(&mut self, id: SessionId) -> Result<()> {
        if !self.sessions.contains_key(&id) {
            return Err(CoreError::UnknownSession(id.0));
        }
        if self.sessions[&id].live.is_some() {
            self.stats.hits += 1;
            return Ok(());
        }
        while self.live_count() >= self.capacity && self.evict_lru(Some(id))? {}
        let positions = self
            .event_index
            .get(&id)
            .ok_or(CoreError::UnknownSession(id.0))?;
        let replayed = self.journal.replay_at(id, positions)?;
        let entry = self.sessions.get_mut(&id).expect("presence checked above");
        debug_assert_eq!(replayed.ops, entry.ops, "journal and entry ops agree");
        entry.live = Some(replayed.session);
        entry.ops = replayed.ops;
        entry.last_shown = replayed.last_shown;
        self.live_sessions += 1;
        self.stats.restores += 1;
        Ok(())
    }

    /// Registers a new session (journals `Created`, evicts down to capacity).
    fn insert(&mut self, id: SessionId, config: SessionConfig, live: LiveSession) -> Result<()> {
        self.append_event(
            id,
            SessionEvent::Created {
                config: config.clone(),
            },
        );
        while self.live_count() >= self.capacity && self.evict_lru(None)? {}
        self.clock += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                config,
                live: Some(live),
                ops: 0,
                last_shown: Vec::new(),
                last_used: self.clock,
            },
        );
        self.live_sessions += 1;
        self.stats.created += 1;
        Ok(())
    }

    /// Number of state-changing operations the shard's journal records for
    /// a session (via the offset index, so adoption stays linear).
    fn indexed_op_count(&self, id: SessionId) -> u64 {
        let Some(positions) = self.event_index.get(&id) else {
            return 0;
        };
        positions
            .iter()
            .filter(|&&i| {
                matches!(
                    self.journal.records()[i].event,
                    SessionEvent::Presented | SessionEvent::Feedback(_) | SessionEvent::Recommended
                )
            })
            .count() as u64
    }

    /// Registers a session in spilled form (journal adoption); the journal
    /// must already contain the session's history.
    fn insert_spilled(&mut self, id: SessionId, config: SessionConfig, ops: u64) {
        self.clock += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                config,
                live: None,
                ops,
                last_shown: Vec::new(),
                last_used: self.clock,
            },
        );
    }

    /// One `present` operation: derive the op RNG, run, journal, remember
    /// the shown list.  A failing run rolls the session back (see
    /// [`Shard::rollback`]) so the journal stays bit-identical to the live
    /// state.
    pub(crate) fn op_present(&mut self, id: SessionId) -> Result<Vec<Package>> {
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .present(&mut rng);
        let shown = match outcome {
            Ok(shown) => shown,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        entry.last_shown = shown.clone();
        self.touch(id);
        self.append_event(id, SessionEvent::Presented);
        Ok(shown)
    }

    /// One `record_feedback` operation against the last presented list.
    /// Malformed feedback is rejected before touching the session; a
    /// mid-mutation failure (e.g. the maintenance sampler running dry on a
    /// contradictory click) rolls the session back to its journaled state.
    pub(crate) fn op_feedback(&mut self, id: SessionId, feedback: Feedback) -> Result<usize> {
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        if entry.last_shown.is_empty() {
            return Err(CoreError::InvalidConfig(format!(
                "session {id} received feedback before any presentation"
            )));
        }
        // Validate up front: index errors are the common client mistake and
        // must not cost a rollback + rehydration.
        feedback.validate(&entry.last_shown)?;
        let shown = entry.last_shown.clone();
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .record_feedback(&shown, feedback, &mut rng);
        let added = match outcome {
            Ok(added) => added,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        self.touch(id);
        self.append_event(id, SessionEvent::Feedback(feedback));
        Ok(added)
    }

    /// One standalone `recommend` operation (rolls back on failure like the
    /// other operations — a recommend may lazily refill a sample pool).
    pub(crate) fn op_recommend(&mut self, id: SessionId) -> Result<Vec<RankedPackage>> {
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .recommend(&mut rng);
        let ranked = match outcome {
            Ok(ranked) => ranked,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        self.touch(id);
        self.append_event(id, SessionEvent::Recommended);
        Ok(ranked)
    }

    /// The live session's progress summary (`None` while spilled).
    pub(crate) fn peek_state(&self, id: SessionId) -> Option<RecommenderState> {
        self.sessions
            .get(&id)?
            .live
            .as_ref()
            .map(|live| live.inspect().state())
    }

    pub(crate) fn session_config(&self, id: SessionId) -> Result<&SessionConfig> {
        self.entry(id).map(|entry| &entry.config)
    }

    pub(crate) fn journal(&self) -> &Journal {
        &self.journal
    }

    pub(crate) fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn is_live(&self, id: SessionId) -> Option<bool> {
        self.sessions.get(&id).map(|entry| entry.live.is_some())
    }
}

/// The sharded, journal-backed session store (see the module docs).
pub struct SessionStore {
    shards: Vec<Shard>,
    next_id: u64,
}

impl SessionStore {
    /// Creates an empty store with the given shape.
    pub fn new(config: StoreConfig) -> Result<Self> {
        config.validate()?;
        Ok(SessionStore {
            shards: (0..config.shards)
                .map(|_| Shard::new(config.capacity_per_shard))
                .collect(),
            next_id: 0,
        })
    }

    /// Rebuilds a store from an exported journal: every session restarts in
    /// spilled form and rehydrates (bit-identically) on first touch.  The
    /// shard count of the new store is free to differ from the writer's —
    /// session placement is a pure function of the id.
    pub fn from_journal(config: StoreConfig, journal: &Journal) -> Result<Self> {
        let mut store = SessionStore::new(config)?;
        // Distribute records to their owning shards, then register each
        // created session as spilled with the op count its events imply.
        for record in journal.records() {
            let shard = shard_of(record.session, store.shards.len());
            store.shards[shard].append_event(record.session, record.event.clone());
        }
        for (id, session_config) in journal.created_sessions() {
            let shard = shard_of(id, store.shards.len());
            let ops = store.shards[shard].indexed_op_count(id);
            store.shards[shard].insert_spilled(id, session_config.clone(), ops);
            store.next_id = store.next_id.max(id.0 + 1);
        }
        Ok(store)
    }

    fn shard_mut(&mut self, id: SessionId) -> &mut Shard {
        let shard = shard_of(id, self.shards.len());
        &mut self.shards[shard]
    }

    fn shard(&self, id: SessionId) -> &Shard {
        &self.shards[shard_of(id, self.shards.len())]
    }

    /// Creates a session from its configuration, returning its id.
    pub fn create(&mut self, config: SessionConfig) -> Result<SessionId> {
        let live = config.build()?; // validate before assigning an id
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.shard_mut(id).insert(id, config, live)?;
        Ok(id)
    }

    /// Builds one presentation round for the session.
    pub fn present(&mut self, id: SessionId) -> Result<Vec<Package>> {
        self.shard_mut(id).op_present(id)
    }

    /// Records typed feedback against the session's last presented list.
    pub fn feedback(&mut self, id: SessionId, feedback: Feedback) -> Result<usize> {
        self.shard_mut(id).op_feedback(id, feedback)
    }

    /// The session's current top-k recommendation.
    pub fn recommend(&mut self, id: SessionId) -> Result<Vec<RankedPackage>> {
        self.shard_mut(id).op_recommend(id)
    }

    /// Runs a read-only closure against the live session (rehydrating it
    /// first if it was spilled).  Inspection does not consume the session's
    /// RNG stream and is not journaled; all mutation goes through
    /// [`SessionStore::present`] / [`SessionStore::feedback`] /
    /// [`SessionStore::recommend`], which is what keeps the journal a
    /// complete record.
    pub fn with_session<R>(
        &mut self,
        id: SessionId,
        f: impl FnOnce(&dyn Recommender) -> R,
    ) -> Result<R> {
        let shard = self.shard_mut(id);
        shard.ensure_live(id)?;
        shard.touch(id);
        let entry = shard.entry(id)?;
        Ok(f(entry.live.as_ref().expect("live ensured").inspect()))
    }

    /// Serialises the session's snapshot, journaling it as a checkpoint.
    /// Errors for baseline sessions, whose durable form is their journal.
    pub fn snapshot(&mut self, id: SessionId) -> Result<String> {
        let shard = self.shard_mut(id);
        shard.ensure_live(id)?;
        // Borrow dance: take the live session out so the shared checkpoint
        // writer can borrow the shard, then put it straight back (the
        // session stays conceptually live throughout).
        let live = shard
            .sessions
            .get_mut(&id)
            .expect("live ensured")
            .live
            .take()
            .expect("live ensured");
        let checkpoint = shard.write_checkpoint(id, &live);
        shard.sessions.get_mut(&id).expect("live ensured").live = Some(live);
        let json = checkpoint?;
        shard.touch(id);
        Ok(json)
    }

    /// Spills the session now (it stays addressable; the next operation
    /// rehydrates it from the journal).
    pub fn evict(&mut self, id: SessionId) -> Result<()> {
        let shard = self.shard_mut(id);
        if !shard.sessions.contains_key(&id) {
            return Err(CoreError::UnknownSession(id.0));
        }
        shard.spill(id)
    }

    /// Rehydrates a spilled session now (no-op when it is already live).
    pub fn restore(&mut self, id: SessionId) -> Result<()> {
        self.shard_mut(id).ensure_live(id)
    }

    /// Whether the session is currently live in memory.
    pub fn is_live(&self, id: SessionId) -> Result<bool> {
        self.shard(id)
            .is_live(id)
            .ok_or(CoreError::UnknownSession(id.0))
    }

    /// The session's configuration.
    pub fn session_config(&self, id: SessionId) -> Result<&SessionConfig> {
        self.shard(id).session_config(id)
    }

    /// The session's progress summary, rehydrating it if needed.
    pub fn state(&mut self, id: SessionId) -> Result<RecommenderState> {
        self.with_session(id, |session| session.state())
    }

    /// Total number of sessions (live and spilled).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every session id, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards as a mutable slice — the `&mut`-splitting seam the
    /// serving loop parallelises over.
    pub(crate) fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Counters summed across all shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// All shards' journals merged into one exportable log (records keep
    /// their per-session order; sessions interleave by shard).
    pub fn export_journal(&self) -> Journal {
        let mut merged = Journal::new();
        for shard in &self.shards {
            merged.extend_from(shard.journal());
        }
        merged
    }

    /// The journal of the shard owning `id` (every event of that session,
    /// plus its shard neighbours').
    pub fn journal_for(&self, id: SessionId) -> &Journal {
        self.shard(id).journal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{user_rng, RecommenderSpec};
    use pkgrec_baselines::{BaselineSpec, FeatureDirection};
    use pkgrec_core::{
        AggregationContext, Catalog, EngineConfig, LinearUtility, Profile, SimulatedUser,
    };

    /// The index a hidden-utility user clicks — clicks sampled this way are
    /// always jointly satisfiable, so the engine's constrained samplers
    /// never run dry mid-test.
    fn choose(catalog: &Catalog, shown: &[Package]) -> usize {
        let context = AggregationContext::new(Profile::cost_quality(), catalog, 2).unwrap();
        let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
        user.choose(catalog, shown, &mut user_rng(0)).unwrap()
    }

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn engine_session(seed: u64) -> SessionConfig {
        SessionConfig {
            catalog: std::sync::Arc::new(catalog()),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 20,
                ..EngineConfig::default()
            }),
            seed,
        }
    }

    fn skyline_session(seed: u64) -> SessionConfig {
        SessionConfig {
            spec: RecommenderSpec::Baseline(BaselineSpec::Skyline {
                cardinality: 2,
                directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                k: 2,
            }),
            ..engine_session(seed)
        }
    }

    #[test]
    fn create_present_feedback_recommend_round_trip() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 2,
            capacity_per_shard: 8,
        })
        .unwrap();
        let id = store.create(engine_session(3)).unwrap();
        assert_eq!(id, SessionId(0));
        assert!(store.is_live(id).unwrap());

        let shown = store.present(id).unwrap();
        assert_eq!(shown.len(), 4);
        let index = choose(&store.session_config(id).unwrap().catalog.clone(), &shown);
        let added = store.feedback(id, Feedback::Click { index }).unwrap();
        assert_eq!(added, shown.len() - 1);
        assert_eq!(store.recommend(id).unwrap().len(), 2);
        let state = store.state(id).unwrap();
        assert_eq!(state.rounds, 1);
        assert_eq!(state.preferences, added);

        // Unknown ids are rejected with the dedicated error.
        assert!(matches!(
            store.present(SessionId(99)),
            Err(CoreError::UnknownSession(99))
        ));
        // Feedback before any presentation is rejected.
        let fresh = store.create(engine_session(4)).unwrap();
        assert!(matches!(
            store.feedback(fresh, Feedback::Skip),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn evict_and_restore_are_transparent_for_engines() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let id = store.create(engine_session(7)).unwrap();
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();

        let replica = store.recommend(id).unwrap();
        // Rewind: build an identical session, drive identically, evict, and
        // check the restored session recommends the same thing.
        let mut other = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let oid = other.create(engine_session(7)).unwrap();
        let other_shown = other.present(oid).unwrap();
        assert_eq!(other_shown, shown);
        other.feedback(oid, Feedback::Click { index }).unwrap();
        other.evict(oid).unwrap();
        assert!(!other.is_live(oid).unwrap());
        let restored = other.recommend(oid).unwrap();
        assert!(other.is_live(oid).unwrap());
        assert_eq!(restored, replica);

        let stats = other.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.restores, 1);
    }

    #[test]
    fn baseline_sessions_restore_by_pure_replay() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let id = store.create(skyline_session(5)).unwrap();
        let shown = store.present(id).unwrap();
        store.feedback(id, Feedback::Click { index: 0 }).unwrap();
        let before = store.recommend(id).unwrap();
        assert!(matches!(
            store.snapshot(id),
            Err(CoreError::InvalidConfig(_))
        ));
        store.evict(id).unwrap();
        // No snapshot checkpoint was written; replay rebuilds from Created.
        assert_eq!(store.stats().snapshots, 0);
        let after = store.recommend(id).unwrap();
        assert_eq!(before, after);
        assert_eq!(store.state(id).unwrap().rounds, 1);
        assert!(!shown.is_empty());
    }

    #[test]
    fn lru_capacity_eviction_spills_the_coldest_session() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 2,
        })
        .unwrap();
        let a = store.create(engine_session(1)).unwrap();
        let b = store.create(engine_session(2)).unwrap();
        store.present(a).unwrap();
        store.present(b).unwrap();
        // Creating a third session evicts the LRU live one — `a`.
        let c = store.create(engine_session(3)).unwrap();
        assert!(!store.is_live(a).unwrap());
        assert!(store.is_live(b).unwrap());
        assert!(store.is_live(c).unwrap());
        // Touching `a` rehydrates it and spills the new LRU (`b`).
        store.present(a).unwrap();
        assert!(store.is_live(a).unwrap());
        assert!(!store.is_live(b).unwrap());
        assert_eq!(store.len(), 3);
        let stats = store.stats();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.restores, 1);
    }

    #[test]
    fn store_rebuilds_from_its_exported_journal() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 2,
            capacity_per_shard: 8,
        })
        .unwrap();
        let engine_id = store.create(engine_session(11)).unwrap();
        let baseline_id = store.create(skyline_session(12)).unwrap();
        for id in [engine_id, baseline_id] {
            let shown = store.present(id).unwrap();
            let index = choose(&catalog(), &shown);
            store.feedback(id, Feedback::Click { index }).unwrap();
        }
        let expected_engine = store.recommend(engine_id).unwrap();
        let expected_baseline = store.recommend(baseline_id).unwrap();

        // Adopt the journal into a store with a *different* shard count.
        let journal = store.export_journal();
        let mut adopted = SessionStore::from_journal(
            StoreConfig {
                shards: 3,
                capacity_per_shard: 8,
            },
            &journal,
        )
        .unwrap();
        assert_eq!(adopted.len(), 2);
        assert!(!adopted.is_live(engine_id).unwrap());
        // The adopted store replays each session bit-identically.  The ops
        // counters include the recommends above, so the derived streams
        // line up exactly.
        assert_eq!(adopted.recommend(engine_id).unwrap(), expected_engine);
        assert_eq!(adopted.recommend(baseline_id).unwrap(), expected_baseline);
        // And new ids never collide with adopted ones.
        let next = adopted.create(engine_session(13)).unwrap();
        assert!(next.0 > baseline_id.0);
    }

    #[test]
    fn failed_feedback_rolls_back_to_the_journaled_state() {
        // Probe for a click the engine cannot absorb: clicking a package the
        // hidden-taste region contradicts can exhaust the maintenance
        // sampler *after* some preferences were already absorbed, leaving
        // the live session ahead of its journal.  The store must roll the
        // session back so the journal stays the source of truth.
        let probe = |index: usize| -> (SessionStore, SessionId, bool) {
            let mut store = SessionStore::new(StoreConfig {
                shards: 1,
                capacity_per_shard: 4,
            })
            .unwrap();
            let id = store.create(engine_session(3)).unwrap();
            store.present(id).unwrap();
            let failed = store.feedback(id, Feedback::Click { index }).is_err();
            (store, id, failed)
        };
        let (mut store, id) = (0..4)
            .map(probe)
            .find_map(|(store, id, failed)| failed.then_some((store, id)))
            .expect("some click exhausts the sampler under this fixed seed");

        // The op failed mid-mutation: the live form was discarded (rolled
        // back) and nothing was journaled beyond Created + Presented.
        assert!(!store.is_live(id).unwrap());
        assert_eq!(store.stats().rollbacks, 1);
        assert_eq!(store.journal_for(id).len(), 2);
        // The next touch rehydrates the exact pre-feedback state and the
        // session keeps serving: a satisfiable click is absorbed normally.
        assert_eq!(store.state(id).unwrap().rounds, 0);
        assert_eq!(store.state(id).unwrap().preferences, 0);
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();
        assert_eq!(store.state(id).unwrap().rounds, 1);
        // Live state and journal replay agree again, bit for bit.
        let replayed = store.export_journal().replay(id).unwrap();
        let crate::config::LiveSession::Engine(replica) = &replayed.session else {
            panic!("engine session expected");
        };
        let live: pkgrec_core::SessionSnapshot =
            serde_json::from_str(&store.snapshot(id).unwrap()).unwrap();
        assert_eq!(replica.snapshot(), live);
    }

    #[test]
    fn with_session_is_read_only_inspection() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 2,
        })
        .unwrap();
        let id = store.create(engine_session(21)).unwrap();
        store.present(id).unwrap();
        let events_before = store.journal_for(id).len();
        let label = store.with_session(id, |s| s.state().label.clone()).unwrap();
        assert_eq!(label, "engine");
        // Inspection journals nothing and consumes no RNG stream.
        assert_eq!(store.journal_for(id).len(), events_before);
    }

    #[test]
    fn invalid_store_shapes_are_rejected() {
        assert!(SessionStore::new(StoreConfig {
            shards: 0,
            capacity_per_shard: 1,
        })
        .is_err());
        assert!(SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 0,
        })
        .is_err());
        let empty = SessionStore::new(StoreConfig::default()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.session_ids(), Vec::<SessionId>::new());
    }
}
