//! The sharded, journal-backed session store.
//!
//! A [`SessionStore`] owns `N` [`Shard`]s; every session hashes to one shard
//! by its [`SessionId`] ([`shard_of`]), and a shard is a self-contained unit:
//! its sessions, their journal, its LRU clock and its counters.  Shards never
//! share state, which is what lets the serving loop drive them from separate
//! OS threads with plain `&mut` splitting — no locks anywhere.
//!
//! ## Capacity and spill
//!
//! Each shard keeps at most `capacity_per_shard` sessions *live* in memory.
//! Touching a session beyond that evicts the shard's least-recently-used
//! live session: engine sessions spill to a [`SessionEvent::Snapshot`]
//! checkpoint in the journal (O(session) serialisation, O(1) future replay);
//! baseline sessions simply drop their in-memory form, because the journal
//! already holds everything needed to rebuild them.  Spilled sessions stay
//! addressable — the next operation rehydrates them through
//! [`Journal::replay`], bit-identically.  Victim selection reads an ordered
//! LRU index (a BTree keyed by the shard clock), so an eviction costs
//! O(log live) instead of an O(live) scan.
//!
//! ## Durability
//!
//! A store opened through [`SessionStore::open`] writes every journal event
//! through a per-shard `ShardLog` — the segmented, group-committed,
//! compacting durable journal of [`crate::durable`] — and rebuilds itself
//! from those segments on the next open, torn tail and all.  Stores built
//! with [`SessionStore::new`]/[`SessionStore::from_journal`] stay purely in
//! memory; every other behaviour (replay, eviction, determinism) is
//! identical, which is what the serving proptests exercise.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use pkgrec_core::{
    score_stacked, Catalog, CoreError, Feedback, Package, PresentPrep, Profile, RankedPackage,
    Recommender, RecommenderState, Result,
};
use serde::{Deserialize, Serialize};

use crate::config::{catalog_fingerprint, op_rng, shard_of, LiveSession, SessionConfig, SessionId};
use crate::durable::{read_manifest, shard_dir, write_manifest, DurabilityConfig, ShardLog};
use crate::fault::FaultInjector;
use crate::journal::{Journal, SessionEvent};
use crate::scoring::{ScoringService, Submission, Verdict, VerdictOutcome};
use crate::segment::SEGMENT_VERSION;

/// Shape of a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Number of shards (parallelism grain of the serving loop).
    pub shards: usize,
    /// Maximum number of *live* sessions per shard; the store holds any
    /// number of sessions overall, spilling the least recently used ones.
    pub capacity_per_shard: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            capacity_per_shard: 1024,
        }
    }
}

impl StoreConfig {
    /// Validates the shape (both knobs must be at least 1).
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::InvalidConfig(
                "a session store needs at least one shard".into(),
            ));
        }
        if self.capacity_per_shard == 0 {
            return Err(CoreError::InvalidConfig(
                "capacity_per_shard must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Store observability counters (summed across shards by
/// [`SessionStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Sessions created.
    pub created: usize,
    /// Operations that found their session live in memory.
    pub hits: usize,
    /// Operations that had to rehydrate a spilled session (journal replay).
    pub restores: usize,
    /// Sessions spilled by capacity eviction or explicit `evict`.
    pub evictions: usize,
    /// Snapshot checkpoints written to the journal.
    pub snapshots: usize,
    /// Journal events appended (all kinds).
    pub journal_events: usize,
    /// Operations that failed mid-mutation and discarded the live session
    /// so the journal stays the source of truth (see the op methods).
    pub rollbacks: usize,
    /// Durable segment files opened for writing (compaction rewrites
    /// included); zero for memory-only stores.
    pub segments_written: usize,
    /// Bytes handed to the durable journal (record framing included,
    /// compaction rewrites included).
    pub bytes_appended: usize,
    /// Disk bytes reclaimed by checkpoint-anchored compaction.
    pub bytes_reclaimed: usize,
    /// Group commits: buffered write batches flushed to segment files.
    pub group_commits: usize,
    /// Sessions re-registered from a recovered or adopted journal
    /// ([`SessionStore::open`] / [`SessionStore::from_journal`]).
    pub recovery_replays: usize,
    /// Ordered-LRU entries examined while picking eviction victims — at
    /// most two per eviction (the head, plus one skip when the head is the
    /// session being rehydrated), never the shard population.
    pub eviction_probes: usize,
    /// Group-scored `present` operations: sessions whose round went through
    /// a shared kernel sweep instead of an individual scoring call — via
    /// [`Shard::op_present_batch`] or the cross-shard scoring service
    /// ([`Shard::commit_present`] with an admitted verdict).
    pub batched_presents: usize,
    /// Batched kernel sweeps executed: one per same-catalog group per
    /// [`Shard::op_present_batch`] call, plus one per admitted scoring-
    /// service group (accounted by the group-lead member's shard).
    pub batched_groups: usize,
    /// Sessions presented through the cross-shard scoring service's shared
    /// sweep (the [`Shard::prepare_presents`] → submit →
    /// [`Shard::commit_present`] path; a subset of `batched_presents`).
    pub batched_sessions: usize,
    /// Scoring-service submissions the admission policy declined: the
    /// session scored locally (serial-equivalent) instead of sharing a
    /// sweep.
    pub admission_fallbacks: usize,
    /// Microseconds shard owners spent blocked in scoring-service
    /// submission (batching window + rendezvous wait), attributed via
    /// [`Shard::note_batch_wait`].
    pub batch_wait_us: usize,
    /// IO failures injected by the [`FaultPlan`](crate::FaultPlan) carried
    /// in [`DurabilityConfig`]; zero in production (the empty plan).
    pub injected_faults: usize,
    /// Shards currently in degraded (read-only) mode — a gauge, not a
    /// counter: it reflects the state at the moment [`Shard::stats`] ran.
    pub degraded_shards: usize,
    /// Operations undone because their durable append failed (a subset of
    /// `rollbacks`, which also counts compute-failure rollbacks).
    pub rolled_back_ops: usize,
}

impl StoreStats {
    /// Sums another shard's counters into this one.
    pub fn merge(&mut self, other: &StoreStats) {
        self.created += other.created;
        self.hits += other.hits;
        self.restores += other.restores;
        self.evictions += other.evictions;
        self.snapshots += other.snapshots;
        self.journal_events += other.journal_events;
        self.rollbacks += other.rollbacks;
        self.segments_written += other.segments_written;
        self.bytes_appended += other.bytes_appended;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.group_commits += other.group_commits;
        self.recovery_replays += other.recovery_replays;
        self.eviction_probes += other.eviction_probes;
        self.batched_presents += other.batched_presents;
        self.batched_groups += other.batched_groups;
        self.batched_sessions += other.batched_sessions;
        self.admission_fallbacks += other.admission_fallbacks;
        self.batch_wait_us += other.batch_wait_us;
        self.injected_faults += other.injected_faults;
        self.degraded_shards += other.degraded_shards;
        self.rolled_back_ops += other.rolled_back_ops;
    }
}

/// What one [`SessionStore::compact`] pass accomplished (summed across
/// shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Fresh checkpoints written for live engine sessions whose latest
    /// journaled checkpoint was stale, so compaction could anchor on them.
    pub checkpoints_written: usize,
    /// Journal records dropped as superseded by a later checkpoint.
    pub events_dropped: usize,
    /// Disk bytes reclaimed by the durable generation rewrite (zero for
    /// memory-only stores).
    pub bytes_reclaimed: usize,
}

/// The store-wide catalog intern table: content-equal catalogs resolve to
/// one shared `Arc`, so sessions created through *any* shard — including
/// ones whose configs were deserialised off the wire, each with its own
/// fresh allocation — group together under the `Arc`-pointer grouping of
/// [`Shard::op_present_batch`] and the cross-shard scoring service.
///
/// Keyed by [`catalog_fingerprint`] with full content verification on hit
/// (a colliding fingerprint forms its own entry).  Holds [`Weak`] handles,
/// so dropping a fleet releases its catalogs.  The mutex is touched only
/// at session creation and journal adoption, never on the per-op hot path.
#[derive(Clone, Default)]
pub(crate) struct CatalogInterner {
    by_fingerprint: Arc<Mutex<HashMap<u64, Vec<Weak<Catalog>>>>>,
}

impl CatalogInterner {
    /// Resolves `catalog` to the store's canonical `Arc` for its content,
    /// registering it as the canonical handle if the content is new.
    fn intern(&self, catalog: Arc<Catalog>) -> Arc<Catalog> {
        let fingerprint = catalog_fingerprint(&catalog);
        let mut table = self.by_fingerprint.lock().expect("interner poisoned");
        let slot = table.entry(fingerprint).or_default();
        slot.retain(|weak| weak.strong_count() > 0);
        for weak in slot.iter() {
            if let Some(existing) = weak.upgrade() {
                if Arc::ptr_eq(&existing, &catalog) || *existing == *catalog {
                    return existing;
                }
            }
        }
        slot.push(Arc::downgrade(&catalog));
        catalog
    }
}

/// One session's store entry: its recipe, its (live or spilled) state and
/// the drive bookkeeping.
struct SessionEntry {
    config: SessionConfig,
    live: Option<LiveSession>,
    /// Operations applied so far — the next operation's RNG index.
    ops: u64,
    /// The list returned by the session's latest `present` (empty before
    /// the first one); feedback is validated against it.
    last_shown: Vec<Package>,
    /// LRU stamp from the owning shard's clock.
    last_used: u64,
}

/// One session's in-flight `present`, between [`Shard::prepare_presents`]
/// and [`Shard::commit_present`].  Holds the op RNG mid-stream (the serial
/// order within one present is resample → discovery → random tail) plus
/// the prepared artefacts and group key for submission to the
/// [`ScoringService`].
#[derive(Debug)]
pub struct PendingPresent {
    id: SessionId,
    kind: PendingKind,
}

#[derive(Debug)]
enum PendingKind {
    /// A live engine session the scoring service can cover.
    Batched {
        rng: rand::rngs::StdRng,
        catalog: Arc<Catalog>,
        profile: Profile,
        max_package_size: usize,
        /// `Some` until [`PendingPresent::take_submission`] moves it to
        /// the service; the matching [`Verdict`] carries it back.
        prep: Option<PresentPrep>,
    },
    /// A session the service cannot cover (baseline adapter, duplicate id,
    /// re-spilled engine): commit runs the whole serial op.
    Serial,
    /// Prepare failed; the session already rolled back and the error
    /// surfaces at commit (taken by value there).
    Failed(Option<CoreError>),
}

impl PendingPresent {
    /// The session this pending present belongs to.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Whether this pending is a prepared engine round (submittable, and
    /// required to commit before the batch's serial pendings).
    pub fn is_batched(&self) -> bool {
        matches!(self.kind, PendingKind::Batched { .. })
    }

    /// Moves the prepared round out as a scoring-service [`Submission`]
    /// (`None` for serial/failed pendings, or if already taken).  The
    /// service's [`Verdict`] returns the prep at commit.
    pub fn take_submission(&mut self) -> Option<Submission> {
        if let PendingKind::Batched {
            catalog,
            profile,
            max_package_size,
            prep,
            ..
        } = &mut self.kind
        {
            prep.take().map(|prep| Submission {
                catalog: Arc::clone(catalog),
                profile: profile.clone(),
                max_package_size: *max_package_size,
                prep,
            })
        } else {
            None
        }
    }
}

/// What [`Shard::commit_present`] produced for one session.
#[derive(Debug)]
pub struct CommittedPresent {
    /// The presented list — bit-identical to what [`Shard::op_present`]
    /// would have returned.
    pub shown: Vec<Package>,
    /// Wall-clock cost of scoring this session locally, when the admission
    /// policy declined it (or it was never submitted).  Callers feed it to
    /// [`ScoringService::observe_serial`] so the policy's serial EWMA
    /// stays current; `None` for shared-sweep and fully serial commits.
    pub fallback_cost: Option<Duration>,
}

/// One shard: a self-contained map of sessions plus their journal.
///
/// A shard is the unit of exclusive ownership: the serving loop and the
/// `pkgrec-server` request loop both hand each worker thread `&mut` access
/// to a disjoint set of shards ([`SessionStore::shards_mut`]), so the
/// public per-shard operations below never contend with another thread.
/// Callers are responsible for routing: session `id` belongs on shard
/// [`shard_of`]`(id, store.shard_count())`.
pub struct Shard {
    sessions: HashMap<SessionId, SessionEntry>,
    journal: Journal,
    /// Per-session record offsets into `journal` — rehydration replays from
    /// the indexed positions instead of scanning the whole shard log, so a
    /// restore costs O(session history), not O(shard history).
    event_index: HashMap<SessionId, Vec<usize>>,
    /// Ordered LRU index over *live* sessions, keyed by their clock stamp
    /// (stamps are unique — the clock ticks on every insert and touch), so
    /// the eviction victim is the first element instead of a shard scan.
    lru: BTreeSet<(u64, SessionId)>,
    /// The durable backing log (`None` for memory-only stores).
    log: Option<ShardLog>,
    capacity: usize,
    /// Maintained count of entries with a live session, so capacity checks
    /// never rescan the shard.
    live_sessions: usize,
    clock: u64,
    stats: StoreStats,
    /// This shard's index within the store (degraded-error attribution).
    index: usize,
    /// Consecutive durable-append failures; reaching the retry budget
    /// trips the shard into degraded (read-only) mode.
    append_failures: usize,
    /// [`DurabilityConfig::append_retry_budget`]; irrelevant for
    /// memory-only shards, whose appends cannot fail.
    append_retry_budget: usize,
    /// Degraded (read-only) mode: mutating operations are refused with
    /// [`CoreError::Degraded`] until a [`Shard::sync`] succeeds.
    degraded: bool,
    /// The store-wide catalog intern table (shared by every shard; touched
    /// only at create/adopt).
    interner: CatalogInterner,
}

impl Shard {
    fn new(index: usize, capacity: usize, interner: CatalogInterner) -> Self {
        Shard {
            sessions: HashMap::new(),
            journal: Journal::new(),
            event_index: HashMap::new(),
            lru: BTreeSet::new(),
            log: None,
            capacity,
            live_sessions: 0,
            clock: 0,
            stats: StoreStats::default(),
            index,
            append_failures: 0,
            append_retry_budget: usize::MAX,
            degraded: false,
            interner,
        }
    }

    /// The error every mutating operation returns while the shard is
    /// degraded.
    fn degraded_error(&self) -> CoreError {
        CoreError::Degraded {
            shard: self.index,
            reason: format!(
                "durable append failed {} consecutive times (budget {}); \
                 the shard serves reads only until a sync() succeeds",
                self.append_failures, self.append_retry_budget
            ),
        }
    }

    /// Refuses mutating operations while the shard is degraded — checked
    /// at operation entry, before any compute is spent.
    fn check_writable(&self) -> Result<()> {
        if self.degraded {
            Err(self.degraded_error())
        } else {
            Ok(())
        }
    }

    /// Whether this shard is currently degraded (read-only).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Books one durable-append failure: the op is being rolled back, and
    /// exhausting the retry budget trips degraded mode instead of letting
    /// every future request burn a failing IO path.
    fn note_append_failure(&mut self) {
        self.stats.rolled_back_ops += 1;
        self.append_failures += 1;
        if self.append_failures >= self.append_retry_budget {
            self.degraded = true;
        }
    }

    /// Appends one event: durable log first (write-ahead), then the
    /// in-memory journal.  When the durable append fails nothing reached
    /// the in-memory journal either, so the caller can roll the session
    /// back to a consistent state.  A degraded shard refuses the append
    /// outright (this is the backstop guard — operations also check at
    /// entry via `check_writable`, before spending compute).
    fn append_event(&mut self, id: SessionId, event: SessionEvent) -> Result<()> {
        if self.degraded {
            return Err(self.degraded_error());
        }
        if let Some(log) = &mut self.log {
            if let Err(error) = log.append(id, &event) {
                self.note_append_failure();
                return Err(error);
            }
            self.append_failures = 0;
        }
        self.adopt_record(id, event);
        Ok(())
    }

    /// The memory half of an append — also the adoption path for records
    /// that already live on disk (journal import, crash recovery), which
    /// must not be re-written through the durable log.
    fn adopt_record(&mut self, id: SessionId, mut event: SessionEvent) {
        // Adopted `Created` records carry their own catalog allocations
        // (per-record on recovery); interning here lets rehydrated
        // sessions keep grouping by pointer.  Rehydration replays build
        // their engines from this journal record, so the interned handle
        // is the one live sessions end up holding.
        if let SessionEvent::Created { config } = &mut event {
            config.catalog = self.interner.intern(config.catalog.clone());
        }
        self.journal.append(id, event);
        self.event_index
            .entry(id)
            .or_default()
            .push(self.journal.len() - 1);
        self.stats.journal_events += 1;
    }

    /// Registers every session the (adopted) journal created, in spilled
    /// form with the op count its events imply; returns the smallest id not
    /// in use.  Part of [`SessionStore::from_journal`]/[`SessionStore::open`].
    fn register_adopted(&mut self) -> u64 {
        let created: Vec<(SessionId, SessionConfig)> = self
            .journal
            .created_sessions()
            .into_iter()
            .map(|(id, config)| (id, config.clone()))
            .collect();
        let mut next = 0;
        for (id, config) in created {
            let ops = self.indexed_op_count(id);
            self.insert_spilled(id, config, ops);
            self.stats.recovery_replays += 1;
            next = next.max(id.0 + 1);
        }
        next
    }

    /// Re-appends the whole in-memory journal through the durable log —
    /// the resharding path, where recovered records must land in their new
    /// owning shard's segments.
    fn persist_journal(&mut self) -> Result<()> {
        let Some(log) = &mut self.log else {
            return Ok(());
        };
        for record in self.journal.records() {
            log.append(record.session, &record.event)?;
        }
        log.sync()
    }

    /// Discards a live session whose operation failed partway: the journal
    /// never recorded the operation, so the in-memory state may have drifted
    /// from it (e.g. a click whose pool maintenance exhausted the sampler
    /// after some preferences were already absorbed).  Dropping the live
    /// form makes the journal authoritative again — the next touch rehydrates
    /// the exact pre-operation state.
    fn rollback(&mut self, id: SessionId) {
        if let Some(entry) = self.sessions.get_mut(&id) {
            let stamp = entry.last_used;
            if entry.live.take().is_some() {
                self.live_sessions -= 1;
                self.lru.remove(&(stamp, id));
            }
            self.stats.rollbacks += 1;
        }
    }

    fn entry(&self, id: SessionId) -> Result<&SessionEntry> {
        self.sessions
            .get(&id)
            .ok_or(CoreError::UnknownSession(id.0))
    }

    fn touch(&mut self, id: SessionId) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.sessions.get_mut(&id) {
            if entry.live.is_some() {
                self.lru.remove(&(entry.last_used, id));
                self.lru.insert((clock, id));
            }
            entry.last_used = clock;
        }
    }

    fn live_count(&self) -> usize {
        debug_assert_eq!(
            self.live_sessions,
            self.sessions.values().filter(|e| e.live.is_some()).count(),
            "the maintained live-session counter tracks the map"
        );
        debug_assert_eq!(
            self.lru.len(),
            self.live_sessions,
            "the ordered LRU index tracks exactly the live sessions"
        );
        self.live_sessions
    }

    /// Spills the least-recently-used live session other than `keep`,
    /// returning whether a victim existed.
    ///
    /// The victim is the head of the ordered LRU index — O(log live) —
    /// and, because clock stamps are unique, it is exactly the session the
    /// old full-shard `min_by_key` scan would have picked.
    fn evict_lru(&mut self, keep: Option<SessionId>) -> Result<bool> {
        let mut probes = 0;
        let victim = self
            .lru
            .iter()
            .find(|(_, id)| {
                probes += 1;
                Some(*id) != keep
            })
            .map(|(_, id)| *id);
        self.stats.eviction_probes += probes;
        match victim {
            Some(id) => self.spill(id).map(|()| true),
            None => Ok(false),
        }
    }

    /// Writes a `Snapshot` checkpoint for a snapshot-capable session into
    /// the journal — the one checkpoint recipe shared by capacity spills
    /// and explicit [`SessionStore::snapshot`] calls.
    fn write_checkpoint(&mut self, id: SessionId, live: &LiveSession) -> Result<String> {
        let entry = self.entry(id)?;
        let json = live.snapshot_json()?;
        let ops = entry.ops;
        let last_shown = entry.last_shown.clone();
        self.stats.snapshots += 1;
        self.append_event(
            id,
            SessionEvent::Snapshot {
                json: json.clone(),
                ops,
                last_shown,
            },
        )?;
        Ok(json)
    }

    /// Spills one live session: engines checkpoint their snapshot into the
    /// journal, baselines rely on replay-from-`Created`.
    fn spill(&mut self, id: SessionId) -> Result<()> {
        let entry = self
            .sessions
            .get_mut(&id)
            .ok_or(CoreError::UnknownSession(id.0))?;
        let snapshot_capable = entry.config.spec.supports_snapshot();
        let stamp = entry.last_used;
        let Some(live) = entry.live.take() else {
            return Ok(()); // already spilled
        };
        self.live_sessions -= 1;
        self.lru.remove(&(stamp, id));
        if snapshot_capable {
            self.write_checkpoint(id, &live)?;
        }
        self.stats.evictions += 1;
        Ok(())
    }

    /// Makes `id` live, replaying its journal if it was spilled, and evicts
    /// down to capacity around it.
    pub(crate) fn ensure_live(&mut self, id: SessionId) -> Result<()> {
        if !self.sessions.contains_key(&id) {
            return Err(CoreError::UnknownSession(id.0));
        }
        if self.sessions[&id].live.is_some() {
            self.stats.hits += 1;
            return Ok(());
        }
        while self.live_count() >= self.capacity && self.evict_lru(Some(id))? {}
        let positions = self
            .event_index
            .get(&id)
            .ok_or(CoreError::UnknownSession(id.0))?;
        let replayed = self.journal.replay_at(id, positions)?;
        let entry = self.sessions.get_mut(&id).expect("presence checked above");
        debug_assert_eq!(replayed.ops, entry.ops, "journal and entry ops agree");
        entry.live = Some(replayed.session);
        entry.ops = replayed.ops;
        entry.last_shown = replayed.last_shown;
        let stamp = entry.last_used;
        self.live_sessions += 1;
        // Rehydration re-enters the LRU index at the session's existing
        // stamp — it does not count as a touch (the caller touches when the
        // operation lands, matching the old scan's behaviour).
        self.lru.insert((stamp, id));
        self.stats.restores += 1;
        Ok(())
    }

    /// Builds and registers a new session under a caller-chosen id — the
    /// per-shard half of [`SessionStore::create`], public so an external
    /// request loop that owns this shard `&mut` can create sessions without
    /// routing back through the store.  The id must hash to this shard
    /// ([`shard_of`]) and must not be in use; the config is validated (the
    /// live session is built) before anything is journaled.
    pub fn create(&mut self, id: SessionId, mut config: SessionConfig) -> Result<()> {
        self.check_writable()?;
        if self.sessions.contains_key(&id) {
            return Err(CoreError::InvalidConfig(format!(
                "session id {id} is already in use on this shard"
            )));
        }
        // Resolve the catalog to the store's canonical handle first, so
        // content-equal catalogs — notably configs deserialised off the
        // wire, which arrive one fresh allocation each — share one `Arc`
        // and their sessions group under pointer-keyed batching.
        config.catalog = self.interner.intern(config.catalog);
        let live = config.build()?;
        self.insert(id, config, live)
    }

    /// Registers a new session (journals `Created`, evicts down to capacity).
    fn insert(&mut self, id: SessionId, config: SessionConfig, live: LiveSession) -> Result<()> {
        self.append_event(
            id,
            SessionEvent::Created {
                config: config.clone(),
            },
        )?;
        while self.live_count() >= self.capacity && self.evict_lru(None)? {}
        self.clock += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                config,
                live: Some(live),
                ops: 0,
                last_shown: Vec::new(),
                last_used: self.clock,
            },
        );
        self.live_sessions += 1;
        self.lru.insert((self.clock, id));
        self.stats.created += 1;
        Ok(())
    }

    /// Number of state-changing operations the shard's journal records for
    /// a session (via the offset index, so adoption stays linear).
    ///
    /// Counted backwards from the latest `Snapshot` checkpoint (its
    /// recorded `ops` plus the operations after it), so the count is right
    /// for compacted journals, whose pre-checkpoint operations are gone.
    fn indexed_op_count(&self, id: SessionId) -> u64 {
        let Some(positions) = self.event_index.get(&id) else {
            return 0;
        };
        let mut after = 0u64;
        let mut base = 0u64;
        for &i in positions.iter().rev() {
            match &self.journal.records()[i].event {
                SessionEvent::Presented | SessionEvent::Feedback(_) | SessionEvent::Recommended => {
                    after += 1
                }
                SessionEvent::Snapshot { ops, .. } => {
                    base = *ops;
                    break;
                }
                SessionEvent::Created { .. } => {}
            }
        }
        base + after
    }

    /// Registers a session in spilled form (journal adoption); the journal
    /// must already contain the session's history.
    fn insert_spilled(&mut self, id: SessionId, config: SessionConfig, ops: u64) {
        self.clock += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                config,
                live: None,
                ops,
                last_shown: Vec::new(),
                last_used: self.clock,
            },
        );
    }

    /// One `present` operation: derive the op RNG, run, journal, remember
    /// the shown list.  A failing run rolls the session back (see
    /// `Shard::rollback`) so the journal stays bit-identical to the live
    /// state.
    pub fn op_present(&mut self, id: SessionId) -> Result<Vec<Package>> {
        self.check_writable()?;
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .present(&mut rng);
        let shown = match outcome {
            Ok(shown) => shown,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        // Journal before mutating the entry: if the (durable) append fails,
        // rolling the live form back restores journal ↔ entry agreement.
        if let Err(e) = self.append_event(id, SessionEvent::Presented) {
            self.rollback(id);
            return Err(e);
        }
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        entry.last_shown = shown.clone();
        self.touch(id);
        Ok(shown)
    }

    /// One `present` operation for *each* of `ids`, scoring every group of
    /// same-catalog engine sessions through one shared batched kernel sweep
    /// ([`pkgrec_core::RecommenderEngine::present_batch`]) instead of one per
    /// session.
    ///
    /// The returned lists are positionally aligned with `ids` and
    /// bit-identical to calling [`Shard::op_present`] on each id in order:
    /// every session draws from its own `(seed, ops)` RNG stream, so neither
    /// grouping nor scheduling can change any session's outcome, and each
    /// session's journal gains the same `Presented` event.  Sessions the
    /// batch cannot cover — baseline adapters, or sessions capacity pressure
    /// spilled again while the rest of the batch rehydrated — fall back to
    /// the serial operation.
    ///
    /// Engine sessions group by their shared catalog handle
    /// ([`std::sync::Arc::as_ptr`] — the store hands sessions of one
    /// storefront one interned `Arc`) plus profile and φ equality; content-
    /// equal catalogs behind distinct allocations simply form smaller
    /// groups, which is slower but identical.
    ///
    /// On any mid-batch failure every batch member rolls back to its
    /// journaled state (the same rollback path a failed feedback uses) — a
    /// batched computation may
    /// have advanced live state (e.g. an empty-pool resample) for sessions
    /// whose `Presented` event was never journaled, and dropping the live
    /// forms makes the journal authoritative again.  The next touch
    /// rehydrates the pre-batch state.
    pub fn op_present_batch(&mut self, ids: &[SessionId]) -> Result<Vec<Vec<Package>>> {
        self.check_writable()?;
        // Rehydrate every member first; under capacity pressure a later
        // rehydration can re-spill an earlier member, which the collection
        // pass below routes to the serial fallback.
        for &id in ids {
            self.ensure_live(id)?;
        }
        let mut pos_of: HashMap<SessionId, usize> = HashMap::with_capacity(ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            // A duplicated id would alias `&mut` engine state inside one
            // batch; serve it twice through the serial path instead.
            pos_of.entry(id).or_insert(pos);
        }
        let mut results: Vec<Option<Vec<Package>>> = vec![None; ids.len()];
        let mut batched_groups = 0usize;

        // Compute phase: borrow all batchable engines at once (disjoint map
        // entries via `iter_mut`), group them, and run one batched present
        // per group.  The scope ends before any journaling so the entry map
        // is free again.
        let compute: Result<()> = {
            struct BatchEntry<'a> {
                pos: usize,
                group: usize,
                config: &'a SessionConfig,
                rng: rand::rngs::StdRng,
                engine: &'a mut pkgrec_core::RecommenderEngine,
            }
            let mut batchable: Vec<BatchEntry<'_>> = Vec::new();
            for (id, entry) in self.sessions.iter_mut() {
                let Some(&pos) = pos_of.get(id) else { continue };
                let SessionEntry {
                    config, live, ops, ..
                } = entry;
                if let Some(LiveSession::Engine(engine)) = live {
                    batchable.push(BatchEntry {
                        pos,
                        group: 0,
                        config,
                        rng: op_rng(config.seed, *ops),
                        engine: engine.as_mut(),
                    });
                }
            }
            // Deterministic grouping: first-appearance order over `ids`.
            batchable.sort_unstable_by_key(|e| e.pos);
            let mut group_keys: Vec<usize> = Vec::new(); // index of each group's first entry
            for i in 0..batchable.len() {
                let group = group_keys
                    .iter()
                    .position(|&first| {
                        let a = batchable[first].config;
                        let b = batchable[i].config;
                        std::sync::Arc::as_ptr(&a.catalog) == std::sync::Arc::as_ptr(&b.catalog)
                            && a.profile == b.profile
                            && a.max_package_size == b.max_package_size
                    })
                    .unwrap_or_else(|| {
                        group_keys.push(i);
                        group_keys.len() - 1
                    });
                batchable[i].group = group;
            }
            batchable.sort_by_key(|e| (e.group, e.pos));

            let mut outcome = Ok(());
            let mut rest: &mut [BatchEntry<'_>] = &mut batchable[..];
            while !rest.is_empty() {
                let group = rest[0].group;
                let end = rest
                    .iter()
                    .position(|e| e.group != group)
                    .unwrap_or(rest.len());
                let (chunk, tail) = rest.split_at_mut(end);
                let mut refs: Vec<(&mut pkgrec_core::RecommenderEngine, &mut dyn rand::RngCore)> =
                    chunk
                        .iter_mut()
                        .map(|e| (&mut *e.engine, &mut e.rng as &mut dyn rand::RngCore))
                        .collect();
                match pkgrec_core::RecommenderEngine::present_batch(&mut refs) {
                    Ok(shown_lists) => {
                        batched_groups += 1;
                        for (e, shown) in chunk.iter().zip(shown_lists) {
                            results[e.pos] = Some(shown);
                        }
                    }
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
                rest = tail;
            }
            outcome
        };
        if let Err(e) = compute {
            for &id in ids {
                self.rollback(id);
            }
            return Err(e);
        }

        // Journal phase: commit each batched present exactly as the serial
        // operation would.  A failing append rolls back every member whose
        // computation has not been journaled yet (their live state ran ahead
        // of the journal); already-committed members stay consistent.
        for (pos, &id) in ids.iter().enumerate() {
            let Some(shown) = &results[pos] else { continue };
            if let Err(e) = self.append_event(id, SessionEvent::Presented) {
                for (later, &other) in ids.iter().enumerate().skip(pos) {
                    if results[later].is_some() {
                        self.rollback(other);
                    }
                }
                return Err(e);
            }
            let entry = self.sessions.get_mut(&id).expect("live ensured");
            entry.ops += 1;
            entry.last_shown = shown.clone();
            self.touch(id);
            self.stats.batched_presents += 1;
        }
        self.stats.batched_groups += batched_groups;

        // Serial fallback for everything the batch could not cover.
        for (pos, &id) in ids.iter().enumerate() {
            if results[pos].is_none() {
                results[pos] = Some(self.op_present(id)?);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every id resolved"))
            .collect())
    }

    /// The submission half of a scoring-service `present`: rehydrates each
    /// id, runs the mutating prepare (empty-pool resample + candidate
    /// discovery) on every live engine session, and returns one
    /// [`PendingPresent`] per id, positionally aligned.
    ///
    /// Sessions the service cannot cover — baseline adapters, duplicate
    /// ids (which would alias engine state within one round), or sessions
    /// capacity pressure re-spilled while later members rehydrated — come
    /// back as serial pendings and run through [`Shard::op_present`] at
    /// commit.  A session whose prepare *fails* rolls back immediately and
    /// comes back as a failed pending whose error surfaces at commit.
    ///
    /// The contract between this call and the matching
    /// [`Shard::commit_present`]s: no other operation may touch this shard
    /// in between (prepared live state runs ahead of the journal until the
    /// commit lands), and batched pendings must commit before serial ones
    /// (a serial fallback's rehydration could otherwise evict a prepared
    /// engine).  [`SessionStore::present_many`], the serving loop, and the
    /// server request workers all follow this discipline; a batch that has
    /// to be abandoned wholesale goes through [`Shard::abort_presents`].
    pub fn prepare_presents(&mut self, ids: &[SessionId]) -> Result<Vec<PendingPresent>> {
        self.check_writable()?;
        for &id in ids {
            self.ensure_live(id)?;
        }
        let mut first_pos: HashMap<SessionId, usize> = HashMap::with_capacity(ids.len());
        let mut pendings = Vec::with_capacity(ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            if *first_pos.entry(id).or_insert(pos) != pos {
                pendings.push(PendingPresent {
                    id,
                    kind: PendingKind::Serial,
                });
                continue;
            }
            let entry = self.sessions.get_mut(&id).expect("ensured above");
            let SessionEntry {
                config, live, ops, ..
            } = entry;
            let prepared = match live {
                Some(LiveSession::Engine(engine)) => {
                    let mut rng = op_rng(config.seed, *ops);
                    engine.prepare_present(&mut rng).map(|prep| {
                        Some(PendingKind::Batched {
                            rng,
                            catalog: config.catalog.clone(),
                            profile: config.profile.clone(),
                            max_package_size: config.max_package_size,
                            prep: Some(prep),
                        })
                    })
                }
                _ => Ok(None),
            };
            match prepared {
                Ok(Some(kind)) => pendings.push(PendingPresent { id, kind }),
                Ok(None) => pendings.push(PendingPresent {
                    id,
                    kind: PendingKind::Serial,
                }),
                Err(e) => {
                    self.rollback(id);
                    pendings.push(PendingPresent {
                        id,
                        kind: PendingKind::Failed(Some(e)),
                    });
                }
            }
        }
        Ok(pendings)
    }

    /// The commit half of a scoring-service `present`: finishes the round
    /// from the service's [`Verdict`] (shared-sweep readback for admitted
    /// groups, local singleton scoring for declined ones — both
    /// bit-identical to [`Shard::op_present`]), journals the `Presented`
    /// event exactly as the serial operation would, and books the
    /// counters.  Serial pendings run the whole serial operation here;
    /// failed pendings surface their prepare error.
    ///
    /// Every failure path rolls this session back to its journaled state
    /// before returning, so a caller may keep committing the batch's other
    /// members after an error — each commit is self-contained.
    pub fn commit_present(
        &mut self,
        pending: PendingPresent,
        verdict: Option<Verdict>,
    ) -> Result<CommittedPresent> {
        let id = pending.id;
        let (mut rng, kept_prep) = match pending.kind {
            PendingKind::Failed(error) => {
                return Err(error.unwrap_or(CoreError::UnknownSession(id.0)))
            }
            PendingKind::Serial => {
                return self.op_present(id).map(|shown| CommittedPresent {
                    shown,
                    fallback_cost: None,
                });
            }
            PendingKind::Batched { rng, prep, .. } => (rng, prep),
        };
        // The prepared live state ran ahead of the journal; any refusal
        // from here on rolls the session back to its journaled form.
        if let Err(e) = self.check_writable() {
            self.rollback(id);
            return Err(e);
        }
        let engine_live = matches!(
            self.sessions.get(&id).and_then(|entry| entry.live.as_ref()),
            Some(LiveSession::Engine(_))
        );
        if !engine_live {
            self.rollback(id);
            return Err(CoreError::InvalidConfig(format!(
                "session {id} lost its prepared live state between \
                 prepare_presents and commit_present"
            )));
        }
        let entry = self.sessions.get(&id).expect("checked above");
        let Some(LiveSession::Engine(engine)) = entry.live.as_ref() else {
            unreachable!("liveness checked above")
        };
        // Which scoring path, and what it computed.  All three arms are
        // bit-identical: a singleton stack computes exactly the serial
        // result, and shared-sweep cells are independent dot products.
        let was_submitted = kept_prep.is_none();
        let (shown, fallback_cost, admitted_lead, admitted) = match verdict {
            Some(Verdict {
                prep,
                outcome:
                    VerdictOutcome::Batched {
                        scores,
                        member,
                        group_lead,
                    },
            }) => (
                engine.present_from_scores(&prep, member, &scores, &mut rng),
                None,
                group_lead,
                true,
            ),
            Some(Verdict {
                prep,
                outcome: VerdictOutcome::Fallback,
            }) => {
                let started = Instant::now();
                let stacked = score_stacked(&[&prep]);
                let shown = engine.present_from_scores(&prep, 0, &stacked, &mut rng);
                (shown, Some(started.elapsed()), false, false)
            }
            None => {
                // Never submitted: the caller kept the prep local (e.g. a
                // round with nothing worth batching).  Score the singleton
                // stack here; it is the serial computation.
                let Some(prep) = kept_prep else {
                    self.rollback(id);
                    return Err(CoreError::InvalidConfig(format!(
                        "session {id} was submitted to the scoring service \
                         but committed without its verdict"
                    )));
                };
                let started = Instant::now();
                let stacked = score_stacked(&[&prep]);
                let shown = engine.present_from_scores(&prep, 0, &stacked, &mut rng);
                (shown, Some(started.elapsed()), false, false)
            }
        };
        let was_submitted_fallback = fallback_cost.is_some() && was_submitted;
        if let Err(e) = self.append_event(id, SessionEvent::Presented) {
            self.rollback(id);
            return Err(e);
        }
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        entry.last_shown = shown.clone();
        self.touch(id);
        if admitted {
            self.stats.batched_presents += 1;
            self.stats.batched_sessions += 1;
            if admitted_lead {
                self.stats.batched_groups += 1;
            }
        } else if was_submitted_fallback {
            self.stats.admission_fallbacks += 1;
        }
        Ok(CommittedPresent {
            shown,
            fallback_cost,
        })
    }

    /// Abandons a prepared batch wholesale: rolls every batched pending's
    /// session back to its journaled state (their live forms ran ahead of
    /// the journal during [`Shard::prepare_presents`]).  Serial and failed
    /// pendings need no undo — serial ones never ran, failed ones already
    /// rolled back.
    pub fn abort_presents(&mut self, pendings: Vec<PendingPresent>) {
        for pending in pendings {
            if matches!(pending.kind, PendingKind::Batched { .. }) {
                self.rollback(pending.id);
            }
        }
    }

    /// Books wall-clock time this shard's owner spent blocked in scoring-
    /// service submission (the batching window / rendezvous wait).
    pub fn note_batch_wait(&mut self, wait: Duration) {
        self.stats.batch_wait_us += wait.as_micros() as usize;
    }

    /// One `record_feedback` operation against the last presented list.
    /// Malformed feedback is rejected before touching the session; a
    /// mid-mutation failure (e.g. the maintenance sampler running dry on a
    /// contradictory click) rolls the session back to its journaled state.
    pub fn op_feedback(&mut self, id: SessionId, feedback: Feedback) -> Result<usize> {
        self.check_writable()?;
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        if entry.last_shown.is_empty() {
            return Err(CoreError::InvalidConfig(format!(
                "session {id} received feedback before any presentation"
            )));
        }
        // Validate up front: index errors are the common client mistake and
        // must not cost a rollback + rehydration.
        feedback.validate(&entry.last_shown)?;
        let shown = entry.last_shown.clone();
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .record_feedback(&shown, feedback, &mut rng);
        let added = match outcome {
            Ok(added) => added,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        if let Err(e) = self.append_event(id, SessionEvent::Feedback(feedback)) {
            self.rollback(id);
            return Err(e);
        }
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        self.touch(id);
        Ok(added)
    }

    /// One standalone `recommend` operation (rolls back on failure like the
    /// other operations — a recommend may lazily refill a sample pool).
    pub fn op_recommend(&mut self, id: SessionId) -> Result<Vec<RankedPackage>> {
        self.check_writable()?;
        self.ensure_live(id)?;
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        let mut rng = op_rng(entry.config.seed, entry.ops);
        let outcome = entry
            .live
            .as_mut()
            .expect("live ensured")
            .recommender()
            .recommend(&mut rng);
        let ranked = match outcome {
            Ok(ranked) => ranked,
            Err(e) => {
                self.rollback(id);
                return Err(e);
            }
        };
        if let Err(e) = self.append_event(id, SessionEvent::Recommended) {
            self.rollback(id);
            return Err(e);
        }
        let entry = self.sessions.get_mut(&id).expect("live ensured");
        entry.ops += 1;
        self.touch(id);
        Ok(ranked)
    }

    /// The live session's progress summary (`None` while spilled).
    pub(crate) fn peek_state(&self, id: SessionId) -> Option<RecommenderState> {
        self.sessions
            .get(&id)?
            .live
            .as_ref()
            .map(|live| live.inspect().state())
    }

    /// Serialises the session's snapshot now, journaling it as a checkpoint
    /// (the per-shard form of [`SessionStore::snapshot`]).  Errors for
    /// baseline sessions, whose durable form is their journal.
    pub fn snapshot_now(&mut self, id: SessionId) -> Result<String> {
        self.check_writable()?;
        self.ensure_live(id)?;
        // Borrow dance: take the live session out so the shared checkpoint
        // writer can borrow the shard, then put it straight back (the
        // session stays conceptually live throughout).
        let live = self
            .sessions
            .get_mut(&id)
            .expect("live ensured")
            .live
            .take()
            .expect("live ensured");
        let checkpoint = self.write_checkpoint(id, &live);
        self.sessions.get_mut(&id).expect("live ensured").live = Some(live);
        let json = checkpoint?;
        self.touch(id);
        Ok(json)
    }

    /// Flushes (and fsyncs) this shard's durable log, if it has one — the
    /// per-shard form of [`SessionStore::sync`], so a worker thread that
    /// owns the shard exclusively can make its events durable at shutdown.
    ///
    /// A successful sync also *re-arms* a degraded shard: the sync proved
    /// the device accepts writes again, so mutating operations resume.  (If
    /// the underlying fault persists, the next failing appends simply trip
    /// degraded mode again once the retry budget is spent.)
    pub fn sync(&mut self) -> Result<()> {
        if let Some(log) = &mut self.log {
            log.sync()?;
        }
        self.append_failures = 0;
        self.degraded = false;
        Ok(())
    }

    /// Number of sessions registered on this shard (live and spilled).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The session's configuration.
    pub fn session_config(&self, id: SessionId) -> Result<&SessionConfig> {
        self.entry(id).map(|entry| &entry.config)
    }

    pub(crate) fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The shard's counters, with the durable log's folded in.
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats;
        if let Some(log) = &self.log {
            let durable = log.stats();
            stats.segments_written += durable.segments_written;
            stats.bytes_appended += durable.bytes_appended;
            stats.bytes_reclaimed += durable.bytes_reclaimed;
            stats.group_commits += durable.group_commits;
            stats.injected_faults += durable.injected_faults;
        }
        if self.degraded {
            stats.degraded_shards += 1;
        }
        stats
    }

    fn is_live(&self, id: SessionId) -> Option<bool> {
        self.sessions.get(&id).map(|entry| entry.live.is_some())
    }

    /// The `ops` recorded by the session's latest journaled checkpoint.
    fn latest_snapshot_ops(&self, id: SessionId) -> Option<u64> {
        let positions = self.event_index.get(&id)?;
        positions
            .iter()
            .rev()
            .find_map(|&i| match &self.journal.records()[i].event {
                SessionEvent::Snapshot { ops, .. } => Some(*ops),
                _ => None,
            })
    }

    /// Checkpoint-anchored compaction of this shard (see
    /// [`SessionStore::compact`]).
    fn compact(&mut self) -> Result<CompactionStats> {
        let mut outcome = CompactionStats::default();

        // 1. Anchor: make sure every snapshot-capable live session has a
        //    checkpoint at its *current* op count, so compaction can drop
        //    its whole earlier history.  (Spilled engine sessions always
        //    checkpointed when they spilled; baselines keep their full
        //    history — the journal is their only durable form.)
        let stale: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(id, entry)| {
                entry.live.is_some()
                    && entry.config.spec.supports_snapshot()
                    && self.latest_snapshot_ops(**id) != Some(entry.ops)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            let live = self
                .sessions
                .get_mut(&id)
                .expect("listed above")
                .live
                .take()
                .expect("liveness checked above");
            let checkpoint = self.write_checkpoint(id, &live);
            self.sessions.get_mut(&id).expect("listed above").live = Some(live);
            checkpoint?;
            outcome.checkpoints_written += 1;
        }

        // 2. Drop superseded records and rebuild the offset index.
        let (journal, dropped) = self.journal.compacted();
        outcome.events_dropped = dropped;
        let mut event_index: HashMap<SessionId, Vec<usize>> = HashMap::new();
        for (i, record) in journal.records().iter().enumerate() {
            event_index.entry(record.session).or_default().push(i);
        }

        // 3. Rewrite the durable generation to hold exactly the retained
        //    records (committed before the old generation is deleted).
        if let Some(log) = &mut self.log {
            let reclaimed_before = log.stats().bytes_reclaimed;
            log.rewrite(journal.records().iter().map(|r| (r.session, &r.event)))?;
            outcome.bytes_reclaimed = log.stats().bytes_reclaimed - reclaimed_before;
        }
        self.journal = journal;
        self.event_index = event_index;
        Ok(outcome)
    }
}

/// The sharded, journal-backed session store (see the module docs).
pub struct SessionStore {
    shards: Vec<Shard>,
    next_id: u64,
}

impl SessionStore {
    /// Creates an empty store with the given shape.
    pub fn new(config: StoreConfig) -> Result<Self> {
        config.validate()?;
        let interner = CatalogInterner::default();
        Ok(SessionStore {
            shards: (0..config.shards)
                .map(|i| Shard::new(i, config.capacity_per_shard, interner.clone()))
                .collect(),
            next_id: 0,
        })
    }

    /// Rebuilds a store from an exported journal: every session restarts in
    /// spilled form and rehydrates (bit-identically) on first touch.  The
    /// shard count of the new store is free to differ from the writer's —
    /// session placement is a pure function of the id.
    pub fn from_journal(config: StoreConfig, journal: &Journal) -> Result<Self> {
        let mut store = SessionStore::new(config)?;
        // Distribute records to their owning shards, then register each
        // created session as spilled with the op count its events imply.
        for record in journal.records() {
            let shard = shard_of(record.session, store.shards.len());
            store.shards[shard].adopt_record(record.session, record.event.clone());
        }
        for shard in &mut store.shards {
            let next = shard.register_adopted();
            store.next_id = store.next_id.max(next);
        }
        Ok(store)
    }

    /// Opens (or creates) a *durable* store rooted at `dir` with the default
    /// [`DurabilityConfig`]: every journal event is group-committed to
    /// per-shard segment files, and an existing directory is recovered —
    /// every session re-registered in spilled form, a torn tail record
    /// truncated at the corruption point.
    pub fn open(dir: impl Into<std::path::PathBuf>, config: StoreConfig) -> Result<Self> {
        SessionStore::open_with(config, DurabilityConfig::at(dir))
    }

    /// [`SessionStore::open`] with explicit durability knobs.
    ///
    /// When the on-disk layout was written with a different shard count,
    /// the store is resharded: all events are recovered, the old shard
    /// directories are replaced by the new layout, and every record is
    /// re-persisted.  (The reshard rewrite itself is not crash-atomic —
    /// unlike compaction it replaces the directory tree — so reshard on a
    /// healthy store, not as crash recovery.)
    pub fn open_with(config: StoreConfig, durability: DurabilityConfig) -> Result<Self> {
        config.validate()?;
        durability.validate()?;
        let root = durability.dir.clone();
        std::fs::create_dir_all(&root).map_err(|e| {
            CoreError::io(
                e.kind(),
                format!("create store directory {}: {e}", root.display()),
            )
        })?;
        // Store-level injector: owns the hit counter of the Manifest site
        // (per-shard sites count inside each shard's own `ShardLog`).
        let mut faults = FaultInjector::new(durability.fault_plan.clone());
        let mut store = SessionStore::new(config)?;
        for shard in &mut store.shards {
            shard.append_retry_budget = durability.append_retry_budget;
        }
        match read_manifest(&root)? {
            None => {
                // Fresh durable store.
                for (i, shard) in store.shards.iter_mut().enumerate() {
                    shard.log = Some(ShardLog::create(shard_dir(&root, i), &durability)?);
                }
                write_manifest(&root, config.shards, &mut faults)?;
            }
            Some(manifest) if manifest.version != SEGMENT_VERSION => {
                return Err(CoreError::io_data(format!(
                    "store at {} has wire version {}, this build speaks {SEGMENT_VERSION}",
                    root.display(),
                    manifest.version
                )));
            }
            Some(manifest) if manifest.shards == config.shards => {
                // Matching layout: attach each shard log in place.
                for (i, shard) in store.shards.iter_mut().enumerate() {
                    let (log, events) = ShardLog::recover(shard_dir(&root, i), &durability)?;
                    shard.log = Some(log);
                    for (session, event) in events {
                        shard.adopt_record(session, event);
                    }
                    let next = shard.register_adopted();
                    store.next_id = store.next_id.max(next);
                }
            }
            Some(manifest) => {
                // Reshard: recover everything, rebuild the directory layout.
                let mut recovered: Vec<(SessionId, SessionEvent)> = Vec::new();
                for i in 0..manifest.shards {
                    let (log, events) = ShardLog::recover(shard_dir(&root, i), &durability)?;
                    drop(log);
                    recovered.extend(events);
                }
                for i in 0..manifest.shards {
                    let dir = shard_dir(&root, i);
                    std::fs::remove_dir_all(&dir).map_err(|e| {
                        CoreError::io(
                            e.kind(),
                            format!("remove old shard directory {}: {e}", dir.display()),
                        )
                    })?;
                }
                for (i, shard) in store.shards.iter_mut().enumerate() {
                    shard.log = Some(ShardLog::create(shard_dir(&root, i), &durability)?);
                }
                for (session, event) in recovered {
                    let shard = shard_of(session, store.shards.len());
                    store.shards[shard].adopt_record(session, event);
                }
                for shard in &mut store.shards {
                    let next = shard.register_adopted();
                    store.next_id = store.next_id.max(next);
                    shard.persist_journal()?;
                }
                write_manifest(&root, config.shards, &mut faults)?;
            }
        }
        Ok(store)
    }

    /// Forces every buffered journal event to disk (`fsync` included).
    /// No-op for memory-only stores.
    pub fn sync(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Checkpoint-anchored compaction: writes fresh checkpoints for live
    /// engine sessions whose latest checkpoint is stale, drops every record
    /// a later checkpoint supersedes, and (for durable stores) rewrites the
    /// retained records into a fresh committed segment generation before
    /// deleting the old one.
    ///
    /// Invariants: replay over the compacted journal reconstructs every
    /// session bit-identically; baseline sessions keep their full history
    /// (the journal is their only durable form); a crash during the rewrite
    /// leaves exactly one recoverable committed generation.
    pub fn compact(&mut self) -> Result<CompactionStats> {
        let mut total = CompactionStats::default();
        for shard in &mut self.shards {
            let outcome = shard.compact()?;
            total.checkpoints_written += outcome.checkpoints_written;
            total.events_dropped += outcome.events_dropped;
            total.bytes_reclaimed += outcome.bytes_reclaimed;
        }
        Ok(total)
    }

    /// Whether this store writes a durable journal.
    pub fn is_durable(&self) -> bool {
        self.shards.iter().all(|shard| shard.log.is_some())
    }

    /// Total on-disk size of the durable journal (0 for memory-only
    /// stores).  Flush first ([`SessionStore::sync`]) for an exact figure.
    pub fn durable_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for shard in &self.shards {
            if let Some(log) = &shard.log {
                total += log.disk_bytes()?;
            }
        }
        Ok(total)
    }

    fn shard_mut(&mut self, id: SessionId) -> &mut Shard {
        let shard = shard_of(id, self.shards.len());
        &mut self.shards[shard]
    }

    fn shard(&self, id: SessionId) -> &Shard {
        &self.shards[shard_of(id, self.shards.len())]
    }

    /// Creates a session from its configuration, returning its id.
    pub fn create(&mut self, config: SessionConfig) -> Result<SessionId> {
        let id = SessionId(self.next_id);
        // Shard::create validates (builds the live session) before anything
        // is journaled, so a rejected config never burns an id.
        self.shard_mut(id).create(id, config)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Builds one presentation round for the session.
    pub fn present(&mut self, id: SessionId) -> Result<Vec<Package>> {
        self.shard_mut(id).op_present(id)
    }

    /// One `present` for *each* of `ids`, batched **across shards** through
    /// the scoring service: every shard prepares its members
    /// ([`Shard::prepare_presents`]), the whole fleet's preps go up in one
    /// flushed submission, and each shard commits its verdicts
    /// ([`Shard::commit_present`]).  The returned lists are positionally
    /// aligned with `ids` and bit-identical to calling
    /// [`SessionStore::present`] on each id in order — grouping, admission
    /// decisions and scheduling can change *when* work is scored, never
    /// *what* it computes.
    ///
    /// This is the single-threaded driver ([`ScoringService::submit_now`]);
    /// the `ServingLoop` and `pkgrec-server` submit from their own worker
    /// threads instead.  If any session's prepare fails the whole round is
    /// abandoned ([`Shard::abort_presents`]) and the error returned; a
    /// failure while committing finishes the remaining members first (each
    /// commit is self-contained) and returns the first error.
    pub fn present_many(
        &mut self,
        ids: &[SessionId],
        service: &ScoringService,
    ) -> Result<Vec<Vec<Package>>> {
        let shard_count = self.shards.len();
        let mut buckets: Vec<Vec<(usize, SessionId)>> = vec![Vec::new(); shard_count];
        for (pos, &id) in ids.iter().enumerate() {
            buckets[shard_of(id, shard_count)].push((pos, id));
        }
        // Prepare phase, shard by shard; a whole-shard refusal (degraded,
        // unknown id) abandons every shard's prepared work.
        let mut pendings: Vec<Vec<PendingPresent>> = Vec::with_capacity(shard_count);
        for (index, bucket) in buckets.iter().enumerate() {
            let shard_ids: Vec<SessionId> = bucket.iter().map(|&(_, id)| id).collect();
            match self.shards[index].prepare_presents(&shard_ids) {
                Ok(prepared) => pendings.push(prepared),
                Err(e) => {
                    for (earlier, prepared) in pendings.into_iter().enumerate() {
                        self.shards[earlier].abort_presents(prepared);
                    }
                    return Err(e);
                }
            }
        }
        // One submission for the whole fleet, flushed immediately.
        let mut submissions = Vec::new();
        let mut routes: Vec<(usize, usize)> = Vec::new();
        for (index, prepared) in pendings.iter_mut().enumerate() {
            for (at, pending) in prepared.iter_mut().enumerate() {
                if let Some(submission) = pending.take_submission() {
                    submissions.push(submission);
                    routes.push((index, at));
                }
            }
        }
        let (verdicts, wait) = service.submit_now(submissions);
        if let Some(&(index, _)) = routes.first() {
            self.shards[index].note_batch_wait(wait);
        }
        let mut slots: Vec<Vec<Option<Verdict>>> = pendings
            .iter()
            .map(|prepared| prepared.iter().map(|_| None).collect())
            .collect();
        for ((index, at), verdict) in routes.into_iter().zip(verdicts) {
            slots[index][at] = Some(verdict);
        }
        // Commit phase: batched members first (a serial fallback's
        // rehydration could evict a prepared engine), then serial ones, in
        // ids order within each class.  Each commit is self-contained, so
        // an error finishes the batch before surfacing.
        let mut taken: Vec<Vec<Option<PendingPresent>>> = pendings
            .into_iter()
            .map(|prepared| prepared.into_iter().map(Some).collect())
            .collect();
        let mut results: Vec<Option<Vec<Package>>> = vec![None; ids.len()];
        let mut first_error = None;
        for batched_pass in [true, false] {
            for (index, bucket) in buckets.iter().enumerate() {
                for (at, &(pos, _)) in bucket.iter().enumerate() {
                    let committable = taken[index][at]
                        .as_ref()
                        .is_some_and(|pending| pending.is_batched() == batched_pass);
                    if !committable {
                        continue;
                    }
                    let pending = taken[index][at].take().expect("checked above");
                    let verdict = slots[index][at].take();
                    match self.shards[index].commit_present(pending, verdict) {
                        Ok(committed) => {
                            if let Some(cost) = committed.fallback_cost {
                                service.observe_serial(1, cost);
                            }
                            results[pos] = Some(committed.shown);
                        }
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                            results[pos] = Some(Vec::new());
                        }
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|shown| shown.expect("every id resolved"))
            .collect())
    }

    /// Records typed feedback against the session's last presented list.
    pub fn feedback(&mut self, id: SessionId, feedback: Feedback) -> Result<usize> {
        self.shard_mut(id).op_feedback(id, feedback)
    }

    /// The session's current top-k recommendation.
    pub fn recommend(&mut self, id: SessionId) -> Result<Vec<RankedPackage>> {
        self.shard_mut(id).op_recommend(id)
    }

    /// Runs a read-only closure against the live session (rehydrating it
    /// first if it was spilled).  Inspection does not consume the session's
    /// RNG stream and is not journaled; all mutation goes through
    /// [`SessionStore::present`] / [`SessionStore::feedback`] /
    /// [`SessionStore::recommend`], which is what keeps the journal a
    /// complete record.
    pub fn with_session<R>(
        &mut self,
        id: SessionId,
        f: impl FnOnce(&dyn Recommender) -> R,
    ) -> Result<R> {
        let shard = self.shard_mut(id);
        shard.ensure_live(id)?;
        shard.touch(id);
        let entry = shard.entry(id)?;
        Ok(f(entry.live.as_ref().expect("live ensured").inspect()))
    }

    /// Serialises the session's snapshot, journaling it as a checkpoint.
    /// Errors for baseline sessions, whose durable form is their journal.
    pub fn snapshot(&mut self, id: SessionId) -> Result<String> {
        self.shard_mut(id).snapshot_now(id)
    }

    /// Spills the session now (it stays addressable; the next operation
    /// rehydrates it from the journal).
    pub fn evict(&mut self, id: SessionId) -> Result<()> {
        let shard = self.shard_mut(id);
        if !shard.sessions.contains_key(&id) {
            return Err(CoreError::UnknownSession(id.0));
        }
        shard.spill(id)
    }

    /// Rehydrates a spilled session now (no-op when it is already live).
    pub fn restore(&mut self, id: SessionId) -> Result<()> {
        self.shard_mut(id).ensure_live(id)
    }

    /// Whether the session is currently live in memory.
    pub fn is_live(&self, id: SessionId) -> Result<bool> {
        self.shard(id)
            .is_live(id)
            .ok_or(CoreError::UnknownSession(id.0))
    }

    /// The session's configuration.
    pub fn session_config(&self, id: SessionId) -> Result<&SessionConfig> {
        self.shard(id).session_config(id)
    }

    /// The session's progress summary, rehydrating it if needed.
    pub fn state(&mut self, id: SessionId) -> Result<RecommenderState> {
        self.with_session(id, |session| session.state())
    }

    /// Total number of sessions (live and spilled).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every session id, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards as a mutable slice — the `&mut`-splitting seam the
    /// serving loop and the `pkgrec-server` request loop parallelise over.
    ///
    /// Split the slice (e.g. with `chunks_mut` or `split_at_mut`) and hand
    /// each worker thread its disjoint shards; route session `id` to index
    /// [`shard_of`]`(id, store.shard_count())`.
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// The id the next [`SessionStore::create`] call would assign.
    ///
    /// Servers that allocate ids themselves (because they route `Create`
    /// requests straight to shards) seed their allocator from this and
    /// write it back with [`SessionStore::set_next_session_id`].
    pub fn next_session_id(&self) -> u64 {
        self.next_id
    }

    /// Advances the id allocator to `next` (forward-only: a smaller value
    /// is ignored, so ids are never reissued).
    pub fn set_next_session_id(&mut self, next: u64) {
        self.next_id = self.next_id.max(next);
    }

    /// Counters summed across all shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    /// All shards' journals merged into one exportable log (records keep
    /// their per-session order; sessions interleave by shard).
    pub fn export_journal(&self) -> Journal {
        let mut merged = Journal::new();
        for shard in &self.shards {
            merged.extend_from(shard.journal());
        }
        merged
    }

    /// The journal of the shard owning `id` (every event of that session,
    /// plus its shard neighbours').
    pub fn journal_for(&self, id: SessionId) -> &Journal {
        self.shard(id).journal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{user_rng, RecommenderSpec};
    use pkgrec_baselines::{BaselineSpec, FeatureDirection};
    use pkgrec_core::{
        AggregationContext, Catalog, EngineConfig, LinearUtility, Profile, SimulatedUser,
    };

    /// The index a hidden-utility user clicks — clicks sampled this way are
    /// always jointly satisfiable, so the engine's constrained samplers
    /// never run dry mid-test.
    fn choose(catalog: &Catalog, shown: &[Package]) -> usize {
        let context = AggregationContext::new(Profile::cost_quality(), catalog, 2).unwrap();
        let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
        user.choose(catalog, shown, &mut user_rng(0)).unwrap()
    }

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn engine_session(seed: u64) -> SessionConfig {
        SessionConfig {
            catalog: std::sync::Arc::new(catalog()),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 20,
                ..EngineConfig::default()
            }),
            seed,
        }
    }

    fn skyline_session(seed: u64) -> SessionConfig {
        SessionConfig {
            spec: RecommenderSpec::Baseline(BaselineSpec::Skyline {
                cardinality: 2,
                directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                k: 2,
            }),
            ..engine_session(seed)
        }
    }

    #[test]
    fn create_present_feedback_recommend_round_trip() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 2,
            capacity_per_shard: 8,
        })
        .unwrap();
        let id = store.create(engine_session(3)).unwrap();
        assert_eq!(id, SessionId(0));
        assert!(store.is_live(id).unwrap());

        let shown = store.present(id).unwrap();
        assert_eq!(shown.len(), 4);
        let index = choose(&store.session_config(id).unwrap().catalog.clone(), &shown);
        let added = store.feedback(id, Feedback::Click { index }).unwrap();
        assert_eq!(added, shown.len() - 1);
        assert_eq!(store.recommend(id).unwrap().len(), 2);
        let state = store.state(id).unwrap();
        assert_eq!(state.rounds, 1);
        assert_eq!(state.preferences, added);

        // Unknown ids are rejected with the dedicated error.
        assert!(matches!(
            store.present(SessionId(99)),
            Err(CoreError::UnknownSession(99))
        ));
        // Feedback before any presentation is rejected.
        let fresh = store.create(engine_session(4)).unwrap();
        assert!(matches!(
            store.feedback(fresh, Feedback::Skip),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn evict_and_restore_are_transparent_for_engines() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let id = store.create(engine_session(7)).unwrap();
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();

        let replica = store.recommend(id).unwrap();
        // Rewind: build an identical session, drive identically, evict, and
        // check the restored session recommends the same thing.
        let mut other = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let oid = other.create(engine_session(7)).unwrap();
        let other_shown = other.present(oid).unwrap();
        assert_eq!(other_shown, shown);
        other.feedback(oid, Feedback::Click { index }).unwrap();
        other.evict(oid).unwrap();
        assert!(!other.is_live(oid).unwrap());
        let restored = other.recommend(oid).unwrap();
        assert!(other.is_live(oid).unwrap());
        assert_eq!(restored, replica);

        let stats = other.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.restores, 1);
    }

    #[test]
    fn baseline_sessions_restore_by_pure_replay() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let id = store.create(skyline_session(5)).unwrap();
        let shown = store.present(id).unwrap();
        store.feedback(id, Feedback::Click { index: 0 }).unwrap();
        let before = store.recommend(id).unwrap();
        assert!(matches!(
            store.snapshot(id),
            Err(CoreError::InvalidConfig(_))
        ));
        store.evict(id).unwrap();
        // No snapshot checkpoint was written; replay rebuilds from Created.
        assert_eq!(store.stats().snapshots, 0);
        let after = store.recommend(id).unwrap();
        assert_eq!(before, after);
        assert_eq!(store.state(id).unwrap().rounds, 1);
        assert!(!shown.is_empty());
    }

    #[test]
    fn lru_capacity_eviction_spills_the_coldest_session() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 2,
        })
        .unwrap();
        let a = store.create(engine_session(1)).unwrap();
        let b = store.create(engine_session(2)).unwrap();
        store.present(a).unwrap();
        store.present(b).unwrap();
        // Creating a third session evicts the LRU live one — `a`.
        let c = store.create(engine_session(3)).unwrap();
        assert!(!store.is_live(a).unwrap());
        assert!(store.is_live(b).unwrap());
        assert!(store.is_live(c).unwrap());
        // Touching `a` rehydrates it and spills the new LRU (`b`).
        store.present(a).unwrap();
        assert!(store.is_live(a).unwrap());
        assert!(!store.is_live(b).unwrap());
        assert_eq!(store.len(), 3);
        let stats = store.stats();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.restores, 1);
    }

    #[test]
    fn store_rebuilds_from_its_exported_journal() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 2,
            capacity_per_shard: 8,
        })
        .unwrap();
        let engine_id = store.create(engine_session(11)).unwrap();
        let baseline_id = store.create(skyline_session(12)).unwrap();
        for id in [engine_id, baseline_id] {
            let shown = store.present(id).unwrap();
            let index = choose(&catalog(), &shown);
            store.feedback(id, Feedback::Click { index }).unwrap();
        }
        let expected_engine = store.recommend(engine_id).unwrap();
        let expected_baseline = store.recommend(baseline_id).unwrap();

        // Adopt the journal into a store with a *different* shard count.
        let journal = store.export_journal();
        let mut adopted = SessionStore::from_journal(
            StoreConfig {
                shards: 3,
                capacity_per_shard: 8,
            },
            &journal,
        )
        .unwrap();
        assert_eq!(adopted.len(), 2);
        assert!(!adopted.is_live(engine_id).unwrap());
        // The adopted store replays each session bit-identically.  The ops
        // counters include the recommends above, so the derived streams
        // line up exactly.
        assert_eq!(adopted.recommend(engine_id).unwrap(), expected_engine);
        assert_eq!(adopted.recommend(baseline_id).unwrap(), expected_baseline);
        // And new ids never collide with adopted ones.
        let next = adopted.create(engine_session(13)).unwrap();
        assert!(next.0 > baseline_id.0);
    }

    #[test]
    fn failed_feedback_rolls_back_to_the_journaled_state() {
        // Probe for a click the engine cannot absorb: clicking a package the
        // hidden-taste region contradicts can exhaust the maintenance
        // sampler *after* some preferences were already absorbed, leaving
        // the live session ahead of its journal.  The store must roll the
        // session back so the journal stays the source of truth.
        let probe = |index: usize| -> (SessionStore, SessionId, bool) {
            let mut store = SessionStore::new(StoreConfig {
                shards: 1,
                capacity_per_shard: 4,
            })
            .unwrap();
            let id = store.create(engine_session(3)).unwrap();
            store.present(id).unwrap();
            let failed = store.feedback(id, Feedback::Click { index }).is_err();
            (store, id, failed)
        };
        let (mut store, id) = (0..4)
            .map(probe)
            .find_map(|(store, id, failed)| failed.then_some((store, id)))
            .expect("some click exhausts the sampler under this fixed seed");

        // The op failed mid-mutation: the live form was discarded (rolled
        // back) and nothing was journaled beyond Created + Presented.
        assert!(!store.is_live(id).unwrap());
        assert_eq!(store.stats().rollbacks, 1);
        assert_eq!(store.journal_for(id).len(), 2);
        // The next touch rehydrates the exact pre-feedback state and the
        // session keeps serving: a satisfiable click is absorbed normally.
        assert_eq!(store.state(id).unwrap().rounds, 0);
        assert_eq!(store.state(id).unwrap().preferences, 0);
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();
        assert_eq!(store.state(id).unwrap().rounds, 1);
        // Live state and journal replay agree again, bit for bit.
        let replayed = store.export_journal().replay(id).unwrap();
        let crate::config::LiveSession::Engine(replica) = &replayed.session else {
            panic!("engine session expected");
        };
        let live: pkgrec_core::SessionSnapshot =
            serde_json::from_str(&store.snapshot(id).unwrap()).unwrap();
        assert_eq!(replica.snapshot(), live);
    }

    #[test]
    fn with_session_is_read_only_inspection() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 2,
        })
        .unwrap();
        let id = store.create(engine_session(21)).unwrap();
        store.present(id).unwrap();
        let events_before = store.journal_for(id).len();
        let label = store.with_session(id, |s| s.state().label.clone()).unwrap();
        assert_eq!(label, "engine");
        // Inspection journals nothing and consumes no RNG stream.
        assert_eq!(store.journal_for(id).len(), events_before);
    }

    #[test]
    fn invalid_store_shapes_are_rejected() {
        assert!(SessionStore::new(StoreConfig {
            shards: 0,
            capacity_per_shard: 1,
        })
        .is_err());
        assert!(SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 0,
        })
        .is_err());
        let empty = SessionStore::new(StoreConfig::default()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.session_ids(), Vec::<SessionId>::new());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pkgrec-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ordered_lru_eviction_matches_the_reference_scan() {
        // Cheap baseline sessions; capacity 3 so every create past the
        // third evicts.  Before each eviction, compute the victim the old
        // O(shard) min-scan would pick and check the ordered index agrees.
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 3,
        })
        .unwrap();
        let mut ids: Vec<SessionId> = (0..3)
            .map(|seed| store.create(skyline_session(seed)).unwrap())
            .collect();
        for round in 0..6u64 {
            // Shuffle recency with a deterministic touch pattern.
            for offset in [round % 3, (round + 1) % 3] {
                let id = ids[ids.len() - 1 - offset as usize];
                if store.is_live(id).unwrap() {
                    store.present(id).unwrap();
                }
            }
            let reference = store.shards[0]
                .sessions
                .iter()
                .filter(|(_, entry)| entry.live.is_some())
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(id, _)| *id)
                .expect("live sessions exist");
            ids.push(store.create(skyline_session(10 + round)).unwrap());
            assert!(
                !store.is_live(reference).unwrap(),
                "round {round}: ordered index evicted someone else"
            );
        }
        // O(log n) selection: with keep=None every eviction probes exactly
        // the index head; rehydration evictions may skip one entry.  Never
        // the shard population.
        let stats = store.stats();
        assert!(stats.evictions >= 6);
        assert!(
            stats.eviction_probes <= 2 * stats.evictions,
            "probes {} exceed 2 per eviction ({})",
            stats.eviction_probes,
            stats.evictions
        );
    }

    #[test]
    fn durable_store_survives_a_kill_and_reopen() {
        let dir = temp_dir("kill-reopen");
        let config = StoreConfig {
            shards: 2,
            capacity_per_shard: 8,
        };
        let durability = DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        };
        let mut store = SessionStore::open_with(config, durability.clone()).unwrap();
        assert!(store.is_durable());
        let id = store.create(engine_session(11)).unwrap();
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();
        let expected = store.recommend(id).unwrap();
        store.sync().unwrap();
        assert!(store.durable_bytes().unwrap() > 0);
        // Kill: no graceful shutdown, no Drop flush.
        std::mem::forget(store);

        let mut reopened = SessionStore::open_with(config, durability).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(!reopened.is_live(id).unwrap());
        assert_eq!(reopened.recommend(id).unwrap(), expected);
        let stats = reopened.stats();
        assert_eq!(stats.recovery_replays, 1);
        // The reopened store keeps serving (and journaling) normally.
        reopened.present(id).unwrap();
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_reopen_with_a_new_shard_count_reshards_the_layout() {
        let dir = temp_dir("reshard");
        let durability = DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        };
        let mut store = SessionStore::open_with(
            StoreConfig {
                shards: 1,
                capacity_per_shard: 8,
            },
            durability.clone(),
        )
        .unwrap();
        let id = store.create(engine_session(5)).unwrap();
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();
        let expected = store.recommend(id).unwrap();
        drop(store); // graceful: Drop flushes the tail

        let mut wide = SessionStore::open_with(
            StoreConfig {
                shards: 3,
                capacity_per_shard: 8,
            },
            durability.clone(),
        )
        .unwrap();
        assert_eq!(wide.recommend(id).unwrap(), expected);
        drop(wide);
        // The resharded layout recovers under its own shard count too.
        let reopened = SessionStore::open_with(
            StoreConfig {
                shards: 3,
                capacity_per_shard: 8,
            },
            durability,
        )
        .unwrap();
        assert_eq!(reopened.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_disk_and_preserves_replay() {
        let dir = temp_dir("compact");
        let config = StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        };
        let durability = DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        };
        let mut store = SessionStore::open_with(config, durability.clone()).unwrap();
        let id = store.create(engine_session(7)).unwrap();
        // Several rounds with explicit checkpoints in between: all but the
        // last checkpoint (plus the ops they supersede) become garbage.
        for _ in 0..3 {
            let shown = store.present(id).unwrap();
            let index = choose(&catalog(), &shown);
            store.feedback(id, Feedback::Click { index }).unwrap();
            store.snapshot(id).unwrap();
        }
        let expected = store.recommend(id).unwrap();
        store.sync().unwrap();
        let before = store.durable_bytes().unwrap();

        let outcome = store.compact().unwrap();
        assert!(outcome.events_dropped > 0);
        assert!(outcome.bytes_reclaimed > 0);
        assert_eq!(
            outcome.checkpoints_written, 1,
            "the live session re-anchors"
        );
        let after = store.durable_bytes().unwrap();
        assert!(
            after < before,
            "compaction shrinks the log ({before} -> {after})"
        );
        // The compacted store still serves, and a restart replays the
        // compacted journal into the same session state.
        assert_eq!(store.stats().bytes_reclaimed, outcome.bytes_reclaimed);
        drop(store);
        let mut reopened = SessionStore::open_with(config, durability).unwrap();
        assert_eq!(reopened.recommend(id).unwrap(), expected);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_stores_compact_their_journal_too() {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: 4,
        })
        .unwrap();
        let engine = store.create(engine_session(9)).unwrap();
        let baseline = store.create(skyline_session(10)).unwrap();
        for id in [engine, baseline] {
            let shown = store.present(id).unwrap();
            let index = choose(&catalog(), &shown);
            store.feedback(id, Feedback::Click { index }).unwrap();
        }
        let expected_engine = store.recommend(engine).unwrap();
        let expected_baseline = store.recommend(baseline).unwrap();
        let before = store.journal_for(engine).len();

        let outcome = store.compact().unwrap();
        assert!(outcome.events_dropped > 0);
        assert_eq!(outcome.bytes_reclaimed, 0, "no disk to reclaim");
        assert!(store.journal_for(engine).len() < before);
        // Replay over the compacted journal is bit-identical: evict both
        // sessions and drive them again (recommends are op-stable).
        store.evict(engine).unwrap();
        store.evict(baseline).unwrap();
        assert_eq!(store.recommend(engine).unwrap(), expected_engine);
        assert_eq!(store.recommend(baseline).unwrap(), expected_baseline);
        // Baseline history was untouched — the journal is its only form.
        assert!(store
            .journal_for(baseline)
            .events_for(baseline)
            .iter()
            .any(|event| matches!(event, SessionEvent::Created { .. })));
    }

    /// Builds a single-shard store whose engine sessions share one interned
    /// catalog `Arc` (the storefront shape the batched present groups on),
    /// plus one baseline and one engine on a private catalog allocation.
    fn batch_fixture(capacity: usize) -> (SessionStore, Vec<SessionId>) {
        let mut store = SessionStore::new(StoreConfig {
            shards: 1,
            capacity_per_shard: capacity,
        })
        .unwrap();
        let shared = std::sync::Arc::new(catalog());
        let mut ids = Vec::new();
        for seed in [11u64, 12, 13] {
            ids.push(
                store
                    .create(SessionConfig {
                        catalog: shared.clone(),
                        ..engine_session(seed)
                    })
                    .unwrap(),
            );
        }
        ids.push(store.create(skyline_session(14)).unwrap());
        ids.push(store.create(engine_session(15)).unwrap()); // private Arc
        (store, ids)
    }

    #[test]
    fn batched_present_is_bit_identical_to_serial_presents() {
        for capacity in [16usize, 1] {
            let (mut batched, ids) = batch_fixture(capacity);
            let (mut serial, _) = batch_fixture(capacity);
            for round in 0..3 {
                let got = batched.shards_mut()[0].op_present_batch(&ids).unwrap();
                let expected: Vec<Vec<Package>> = ids
                    .iter()
                    .map(|&id| serial.shards_mut()[0].op_present(id).unwrap())
                    .collect();
                assert_eq!(got, expected, "capacity {capacity} round {round}");
                for (&id, shown) in ids.iter().zip(expected.iter()) {
                    let index = choose(&batched.session_config(id).unwrap().catalog.clone(), shown);
                    let a = batched.feedback(id, Feedback::Click { index }).unwrap();
                    let b = serial.feedback(id, Feedback::Click { index }).unwrap();
                    assert_eq!(a, b);
                }
            }
            // Both stores now recommend identically, and their journals
            // record the same operation sequences (spill checkpoints may
            // differ — capacity pressure hits the two drive orders at
            // different moments, which is invisible to session state).
            for &id in &ids {
                assert_eq!(
                    batched.recommend(id).unwrap(),
                    serial.recommend(id).unwrap()
                );
                let ops = |store: &SessionStore| {
                    store
                        .export_journal()
                        .events_for(id)
                        .iter()
                        .filter(|e| {
                            matches!(
                                e,
                                SessionEvent::Presented
                                    | SessionEvent::Feedback(_)
                                    | SessionEvent::Recommended
                            )
                        })
                        .count()
                };
                assert_eq!(ops(&batched), ops(&serial));
            }
        }
    }

    #[test]
    fn batched_present_groups_shared_catalogs_and_falls_back_otherwise() {
        let (mut store, ids) = batch_fixture(16);
        // The store-wide intern table resolves the fourth engine's private
        // (content-equal) allocation to the canonical shared handle at
        // create time, so all four engines group by `Arc` pointer...
        let canonical = store.session_config(ids[0]).unwrap().catalog.clone();
        let adopted = store.session_config(ids[4]).unwrap().catalog.clone();
        assert!(
            std::sync::Arc::ptr_eq(&canonical, &adopted),
            "content-equal catalogs intern to one handle"
        );
        store.shards_mut()[0].op_present_batch(&ids).unwrap();
        let stats = store.stats();
        // ...and batch as one group; the baseline falls back.
        assert_eq!(stats.batched_presents, 4);
        assert_eq!(stats.batched_groups, 1);

        // Under capacity 1 every rehydration spills the previous member, so
        // the whole batch degrades to the serial path — and still works.
        let (mut starved, ids) = batch_fixture(1);
        starved.shards_mut()[0].op_present_batch(&ids).unwrap();
        let stats = starved.stats();
        assert_eq!(stats.batched_presents, 1, "only the last member stays live");
        assert!(stats.restores > 0 || stats.evictions > 0);
    }

    #[test]
    fn batched_present_rejects_unknown_sessions_without_side_effects() {
        let (mut store, mut ids) = batch_fixture(16);
        ids.push(SessionId(99));
        assert!(matches!(
            store.shards_mut()[0].op_present_batch(&ids),
            Err(CoreError::UnknownSession(99))
        ));
        // Nothing was journaled: a fresh batch over the valid ids equals a
        // fresh serial store's first round.
        ids.pop();
        let (mut serial, _) = batch_fixture(16);
        let got = store.shards_mut()[0].op_present_batch(&ids).unwrap();
        let expected: Vec<Vec<Package>> = ids
            .iter()
            .map(|&id| serial.shards_mut()[0].op_present(id).unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn persistent_append_failure_degrades_the_shard_and_sync_rearms() {
        use crate::fault::{FaultKind, FaultPlan, FaultSite, PlannedFault};
        let dir = temp_dir("degraded");
        let config = StoreConfig {
            shards: 1,
            capacity_per_shard: 8,
        };
        let durability = DurabilityConfig {
            flush_every_ops: 1,
            append_retry_budget: 2,
            // Flush hits 0-2 carry Created/Presented/Feedback; hits 3 and 4
            // are poisoned, then the "disk" recovers.
            fault_plan: FaultPlan::default().and(PlannedFault {
                site: FaultSite::Flush,
                after: 3,
                count: 2,
                kind: FaultKind::StorageFull,
            }),
            ..DurabilityConfig::at(&dir)
        };
        let mut store = SessionStore::open_with(config, durability).unwrap();
        let id = store.create(engine_session(11)).unwrap();
        let shown = store.present(id).unwrap();
        let index = choose(&catalog(), &shown);
        store.feedback(id, Feedback::Click { index }).unwrap();

        // Both poisoned appends fail with the injected IO class and roll
        // back; the second exhausts the retry budget.
        for attempt in 0..2 {
            assert!(
                matches!(
                    store.present(id),
                    Err(CoreError::Io {
                        kind: std::io::ErrorKind::StorageFull,
                        ..
                    })
                ),
                "attempt {attempt} surfaces the injected fault class"
            );
        }
        // Degraded: mutations are refused with the typed error...
        assert!(matches!(
            store.present(id),
            Err(CoreError::Degraded { shard: 0, .. })
        ));
        assert!(matches!(
            store.create(engine_session(12)),
            Err(CoreError::Degraded { .. })
        ));
        // ...while reads (rehydration included) keep serving.
        assert_eq!(store.state(id).unwrap().rounds, 1);
        assert!(store.session_config(id).is_ok());
        let stats = store.stats();
        assert_eq!(stats.degraded_shards, 1);
        assert_eq!(stats.rolled_back_ops, 2);
        assert_eq!(stats.injected_faults, 2);
        assert!(stats.rollbacks >= 2);

        // The fault cleared after two hits; a successful sync re-arms the
        // shard and elicitation continues exactly where the journal left it.
        store.sync().unwrap();
        assert_eq!(store.stats().degraded_shards, 0);
        let resumed = store.present(id).unwrap();

        // The failed attempts consumed nothing: a shadow store that never
        // saw a fault presents the same rounds from the same op indices.
        let mut shadow = SessionStore::new(config).unwrap();
        let sid = shadow.create(engine_session(11)).unwrap();
        assert_eq!(shadow.present(sid).unwrap(), shown);
        shadow.feedback(sid, Feedback::Click { index }).unwrap();
        assert_eq!(shadow.present(sid).unwrap(), resumed);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_write_fault_fails_the_open_loudly_and_cleanly() {
        use crate::fault::{FaultKind, FaultPlan, FaultSite};
        let dir = temp_dir("manifest-fault");
        let config = StoreConfig {
            shards: 2,
            capacity_per_shard: 4,
        };
        let poisoned = DurabilityConfig {
            fault_plan: FaultPlan::once(FaultSite::Manifest, 0, FaultKind::PermissionDenied),
            ..DurabilityConfig::at(&dir)
        };
        assert!(matches!(
            SessionStore::open_with(config, poisoned),
            Err(CoreError::Io {
                kind: std::io::ErrorKind::PermissionDenied,
                ..
            })
        ));
        // No manifest was written, so a clean reopen starts the store
        // fresh and serves normally.
        let mut store = SessionStore::open_with(config, DurabilityConfig::at(&dir)).unwrap();
        let id = store.create(engine_session(3)).unwrap();
        store.present(id).unwrap();
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
