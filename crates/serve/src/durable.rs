//! The durable, segmented, compacting backing store of a shard's journal.
//!
//! Each shard of a durable [`SessionStore`](crate::SessionStore) owns one
//! `ShardLog`: an in-memory write buffer in front of append-only segment
//! files (wire format v2, see [`crate::segment`]).  Shards never share
//! durable state — each writes its own directory — which preserves the
//! store's lock-free `&mut`-splitting under the serving loop.
//!
//! ## Group commit
//!
//! Appends accumulate in the buffer and reach the filesystem in batches:
//! one `write(2)` per [`DurabilityConfig::flush_every_ops`] events (or per
//! explicit `ShardLog::flush`/`ShardLog::sync` call).  `flush` hands the
//! batch to the OS; `sync` additionally `fsync`s the active segment.  A
//! crash loses at most the unflushed window — never previously flushed
//! records, and never the record framing (recovery truncates a torn tail at
//! the last clean record boundary).
//!
//! ## Generations and compaction
//!
//! Segment files are named `seg-<generation>-<sequence>.pkj`; a generation
//! is *committed* by an empty `gen-<generation>.ok` marker file.  Compaction
//! (`ShardLog::rewrite`) builds the retained records into a fresh
//! generation using a scratch `SegmentWriter`, fsyncs it, commits its
//! marker, and only then swaps it in and deletes the old generation — so a
//! crash *or an IO failure* at any point leaves exactly one recoverable
//! committed generation (plus garbage files the next recovery sweeps), and
//! a failed rewrite leaves the log appending to the old generation as if
//! compaction had never been attempted.
//!
//! ## Fault injection
//!
//! Every IO site — append, group-commit flush, fsync, segment rotation,
//! compaction rewrite, generation-marker commit (and, at the store level,
//! the manifest write) — consults the [`FaultPlan`] carried by
//! [`DurabilityConfig::fault_plan`] *before* touching the filesystem, so a
//! test can fail an exact `(site, hit-count)` coordinate cleanly.  A
//! failed append is transactional: the write buffer, the intern table and
//! the catalog list roll back to their pre-append state, keeping the
//! on-disk journal replay-equal to a store that never saw the operation.
//!
//! ## Interning
//!
//! The log keeps a per-shard catalog intern table keyed by
//! [`catalog_fingerprint`]: the first event referencing a catalog writes one
//! [`WireRecord::Catalog`] definition, and every later `Created` event or
//! `Snapshot` checkpoint stores only the [`CatalogId`].  Definitions always
//! precede their first use in the same write batch, so recovery resolves
//! references in a single forward pass and shares one
//! [`Arc<Catalog>`](std::sync::Arc) across all sessions of a catalog.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pkgrec_core::{Catalog, CoreError, Result};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::config::{catalog_fingerprint, SessionConfig, SessionId};
use crate::fault::{FaultInjector, FaultPlan, FaultSite};
use crate::journal::SessionEvent;
use crate::segment::{
    decode_segment, encode_record, write_header, CatalogId, WireEvent, WireRecord,
    SEGMENT_HEADER_LEN, SEGMENT_VERSION,
};

/// Shape of a store's durable journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory of the durable store; each shard writes its own
    /// `shard-<i>` subdirectory, and a `store.json` manifest records the
    /// layout.
    pub dir: PathBuf,
    /// Group-commit window: buffered events reach the filesystem after this
    /// many appends (1 = write-through).  An explicit
    /// [`SessionStore::sync`](crate::SessionStore::sync) flushes early.
    pub flush_every_ops: usize,
    /// Segment rotation threshold: once the active segment reaches this many
    /// bytes it is sealed and the next batch opens a fresh segment.
    pub segment_max_bytes: u64,
    /// Whether every group commit also `fsync`s the active segment.  Off by
    /// default: the write batch reaches the OS on every flush, and
    /// [`SessionStore::sync`](crate::SessionStore::sync) forces durability
    /// at the moments that matter (checkpoints, shutdown, compaction).
    pub sync_on_flush: bool,
    /// Deterministic fault-injection schedule for the durable path; the
    /// default empty plan injects nothing.
    pub fault_plan: FaultPlan,
    /// How many *consecutive* failed durable appends a shard tolerates
    /// before entering read-only degraded mode (each failed append still
    /// rolls its operation back).  A successful append — or a successful
    /// [`SessionStore::sync`](crate::SessionStore::sync) — re-arms the
    /// shard.
    pub append_retry_budget: usize,
}

impl DurabilityConfig {
    /// The default durability shape rooted at `dir`: group commit every 8
    /// events, 1 MiB segments, no fsync-per-flush, no injected faults, a
    /// 3-failure retry budget before a shard degrades.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            flush_every_ops: 8,
            segment_max_bytes: 1 << 20,
            sync_on_flush: false,
            fault_plan: FaultPlan::none(),
            append_retry_budget: 3,
        }
    }

    /// Validates the knobs (both must be at least 1 / large enough to hold
    /// a segment header).
    pub fn validate(&self) -> Result<()> {
        if self.flush_every_ops == 0 {
            return Err(CoreError::InvalidConfig(
                "flush_every_ops must be at least 1".into(),
            ));
        }
        if self.segment_max_bytes < SEGMENT_HEADER_LEN as u64 {
            return Err(CoreError::InvalidConfig(format!(
                "segment_max_bytes must be at least the {SEGMENT_HEADER_LEN}-byte header"
            )));
        }
        if self.append_retry_budget == 0 {
            return Err(CoreError::InvalidConfig(
                "append_retry_budget must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Durability counters of one [`ShardLog`] (merged into
/// [`StoreStats`](crate::StoreStats) by the store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LogStats {
    /// Segment files opened for writing (including compaction rewrites).
    pub segments_written: usize,
    /// Record bytes handed to the filesystem (framing included; compaction
    /// rewrites included).
    pub bytes_appended: usize,
    /// Disk bytes freed by generation rewrites (old size − new size).
    pub bytes_reclaimed: usize,
    /// Write batches flushed to the active segment.
    pub group_commits: usize,
    /// Faults injected by the [`FaultPlan`] so far.
    pub injected_faults: usize,
}

/// The `store.json` manifest at the root of a durable store's directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Manifest {
    /// Journal wire version ([`SEGMENT_VERSION`]).
    pub version: u32,
    /// Number of shard subdirectories.
    pub shards: usize,
}

/// Name of the manifest file under the store root.
pub(crate) const MANIFEST_NAME: &str = "store.json";

/// Reads the manifest if one exists.
pub(crate) fn read_manifest(root: &Path) -> Result<Option<Manifest>> {
    let path = root.join(MANIFEST_NAME);
    if !path.exists() {
        return Ok(None);
    }
    let bytes = fs::read(&path).map_err(|e| io_err(&path, "read manifest", e))?;
    let manifest: Manifest = serde_json::from_slice(&bytes)
        .map_err(|e| CoreError::io_data(format!("parse manifest {}: {e}", path.display())))?;
    Ok(Some(manifest))
}

/// Writes (and fsyncs) the manifest.  The [`FaultSite::Manifest`] failpoint
/// fires here, from the store-level injector.
pub(crate) fn write_manifest(root: &Path, shards: usize, faults: &mut FaultInjector) -> Result<()> {
    let manifest = Manifest {
        version: SEGMENT_VERSION,
        shards,
    };
    let path = root.join(MANIFEST_NAME);
    faults
        .check(FaultSite::Manifest)
        .map_err(|e| io_err(&path, "write manifest", e))?;
    let bytes = serde_json::to_vec(&manifest)
        .map_err(|e| CoreError::io_data(format!("serialise manifest: {e}")))?;
    let mut file = fs::File::create(&path).map_err(|e| io_err(&path, "create manifest", e))?;
    file.write_all(&bytes)
        .and_then(|()| file.sync_all())
        .map_err(|e| io_err(&path, "write manifest", e))
}

/// The shard subdirectory for shard `index` under `root`.
pub(crate) fn shard_dir(root: &Path, index: usize) -> PathBuf {
    root.join(format!("shard-{index:04}"))
}

fn io_err(path: &Path, action: &str, e: std::io::Error) -> CoreError {
    CoreError::io(e.kind(), format!("{action} {}: {e}", path.display()))
}

fn segment_name(generation: u64, sequence: u64) -> String {
    format!("seg-{generation:08}-{sequence:08}.pkj")
}

fn marker_name(generation: u64) -> String {
    format!("gen-{generation:08}.ok")
}

fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".pkj")?;
    let (generation, sequence) = rest.split_once('-')?;
    Some((generation.parse().ok()?, sequence.parse().ok()?))
}

fn parse_marker_name(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?.strip_suffix(".ok")?.parse().ok()
}

/// Commits generation `generation` in `dir` by fsyncing its empty
/// `gen-<g>.ok` marker.  The [`FaultSite::Marker`] failpoint fires here.
fn commit_marker(dir: &Path, generation: u64, faults: &mut FaultInjector) -> Result<()> {
    let path = dir.join(marker_name(generation));
    faults
        .check(FaultSite::Marker)
        .map_err(|e| io_err(&path, "commit generation marker", e))?;
    fs::File::create(&path)
        .and_then(|file| file.sync_all())
        .map_err(|e| io_err(&path, "commit generation marker", e))
}

/// The write-path knobs every [`SegmentWriter`] call needs.
#[derive(Debug, Clone, Copy)]
struct WriteKnobs {
    flush_every_ops: usize,
    segment_max_bytes: u64,
    sync_on_flush: bool,
}

impl WriteKnobs {
    fn from_config(config: &DurabilityConfig) -> WriteKnobs {
        WriteKnobs {
            flush_every_ops: config.flush_every_ops,
            segment_max_bytes: config.segment_max_bytes,
            sync_on_flush: config.sync_on_flush,
        }
    }
}

struct ActiveSegment {
    file: fs::File,
    path: PathBuf,
    bytes: u64,
}

/// Encodes records into the segment files of one generation: write buffer,
/// active segment, rotation, catalog interning.  [`ShardLog`] owns one for
/// its live generation; a compaction rewrite builds the *next* generation
/// in a scratch writer and swaps it in only after the new marker commits,
/// which is what makes a failed rewrite invisible.
struct SegmentWriter {
    dir: PathBuf,
    knobs: WriteKnobs,
    generation: u64,
    next_sequence: u64,
    active: Option<ActiveSegment>,
    pending: Vec<u8>,
    pending_records: usize,
    /// fingerprint → candidate ids (equality-checked; collisions chain).
    intern: HashMap<u64, Vec<CatalogId>>,
    /// id (dense) → the interned catalog.
    catalogs: Vec<Arc<Catalog>>,
}

impl SegmentWriter {
    fn new(dir: PathBuf, knobs: WriteKnobs, generation: u64, next_sequence: u64) -> SegmentWriter {
        SegmentWriter {
            dir,
            knobs,
            generation,
            next_sequence,
            active: None,
            pending: Vec::new(),
            pending_records: 0,
            intern: HashMap::new(),
            catalogs: Vec::new(),
        }
    }

    /// Buffers one event (plus any new catalog definition it needs), group
    /// committing when the window fills.  Transactional: on any failure —
    /// injected or real — the write buffer, the intern table and the
    /// catalog list roll back to their pre-append state, so the bytes of a
    /// rolled-back operation can never reach disk later.
    fn append(
        &mut self,
        session: SessionId,
        event: &SessionEvent,
        faults: &mut FaultInjector,
        stats: &mut LogStats,
    ) -> Result<()> {
        faults
            .check(FaultSite::Append)
            .map_err(|e| io_err(&self.dir, "append event", e))?;
        let pending_mark = self.pending.len();
        let records_mark = self.pending_records;
        let catalogs_mark = self.catalogs.len();
        let result = self.append_unchecked(session, event, faults, stats);
        if result.is_err() {
            self.pending.truncate(pending_mark);
            self.pending_records = records_mark;
            if self.catalogs.len() > catalogs_mark {
                self.catalogs.truncate(catalogs_mark);
                self.intern.retain(|_, ids| {
                    ids.retain(|id| (id.0 as usize) < catalogs_mark);
                    !ids.is_empty()
                });
            }
        }
        result
    }

    fn append_unchecked(
        &mut self,
        session: SessionId,
        event: &SessionEvent,
        faults: &mut FaultInjector,
        stats: &mut LogStats,
    ) -> Result<()> {
        let wire = self.event_to_wire(event)?;
        encode_record(
            &WireRecord::Event {
                session,
                event: wire,
            },
            &mut self.pending,
        )?;
        self.pending_records += 1;
        if self.pending_records >= self.knobs.flush_every_ops {
            self.flush(faults, stats)?;
        }
        Ok(())
    }

    /// Writes the buffered batch to the active segment (one group commit).
    fn flush(&mut self, faults: &mut FaultInjector, stats: &mut LogStats) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        faults
            .check(FaultSite::Flush)
            .map_err(|e| io_err(&self.dir, "flush batch", e))?;
        self.ensure_active(faults, stats)?;
        let active = self.active.as_mut().expect("ensured above");
        active
            .file
            .write_all(&self.pending)
            .map_err(|e| io_err(&active.path, "append batch", e))?;
        active.bytes += self.pending.len() as u64;
        stats.bytes_appended += self.pending.len();
        stats.group_commits += 1;
        if self.knobs.sync_on_flush {
            active
                .file
                .sync_data()
                .map_err(|e| io_err(&active.path, "sync segment", e))?;
        }
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Flushes and `fsync`s the active segment: everything appended so far
    /// survives a crash.
    fn sync(&mut self, faults: &mut FaultInjector, stats: &mut LogStats) -> Result<()> {
        self.flush(faults, stats)?;
        faults
            .check(FaultSite::Sync)
            .map_err(|e| io_err(&self.dir, "sync shard log", e))?;
        if let Some(active) = &mut self.active {
            active
                .file
                .sync_all()
                .map_err(|e| io_err(&active.path, "sync segment", e))?;
        }
        Ok(())
    }

    /// Seals the active segment if full and opens a fresh one if needed.
    fn ensure_active(&mut self, faults: &mut FaultInjector, stats: &mut LogStats) -> Result<()> {
        let full = match &self.active {
            None => true,
            Some(active) => active.bytes >= self.knobs.segment_max_bytes,
        };
        if !full {
            return Ok(());
        }
        faults
            .check(FaultSite::Rotate)
            .map_err(|e| io_err(&self.dir, "rotate segment", e))?;
        if let Some(sealed) = self.active.take() {
            sealed
                .file
                .sync_data()
                .map_err(|e| io_err(&sealed.path, "seal segment", e))?;
        }
        let path = self
            .dir
            .join(segment_name(self.generation, self.next_sequence));
        self.next_sequence += 1;
        let mut file = fs::File::create(&path).map_err(|e| io_err(&path, "create segment", e))?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        write_header(&mut header);
        file.write_all(&header)
            .map_err(|e| io_err(&path, "write segment header", e))?;
        stats.segments_written += 1;
        self.active = Some(ActiveSegment {
            file,
            path,
            bytes: SEGMENT_HEADER_LEN as u64,
        });
        Ok(())
    }

    /// Interns a catalog, emitting its definition record into the pending
    /// batch on first sight (so the definition always precedes its first
    /// use on disk).
    fn intern_catalog(&mut self, catalog: &Arc<Catalog>) -> Result<CatalogId> {
        let fingerprint = catalog_fingerprint(catalog);
        if let Some(ids) = self.intern.get(&fingerprint) {
            for &id in ids {
                if *self.catalogs[id.0 as usize] == **catalog {
                    return Ok(id);
                }
            }
        }
        let id = CatalogId(self.catalogs.len() as u64);
        encode_record(
            &WireRecord::Catalog {
                id,
                catalog: (**catalog).clone(),
            },
            &mut self.pending,
        )?;
        self.catalogs.push(catalog.clone());
        self.intern.entry(fingerprint).or_default().push(id);
        Ok(id)
    }

    fn event_to_wire(&mut self, event: &SessionEvent) -> Result<WireEvent> {
        Ok(match event {
            SessionEvent::Created { config } => WireEvent::Created {
                catalog: self.intern_catalog(&config.catalog)?,
                profile: config.profile.clone(),
                max_package_size: config.max_package_size,
                spec: config.spec.clone(),
                seed: config.seed,
            },
            SessionEvent::Presented => WireEvent::Presented,
            SessionEvent::Feedback(feedback) => WireEvent::Feedback(*feedback),
            SessionEvent::Recommended => WireEvent::Recommended,
            SessionEvent::Snapshot {
                json,
                ops,
                last_shown,
            } => {
                let mut snapshot: Value = serde_json::from_str(json)
                    .map_err(|e| CoreError::io_data(format!("parse snapshot checkpoint: {e}")))?;
                let Value::Object(entries) = &mut snapshot else {
                    return Err(CoreError::io_data(
                        "snapshot checkpoint is not a JSON object",
                    ));
                };
                let slot = entries
                    .iter_mut()
                    .find(|(key, _)| key == "catalog")
                    .ok_or_else(|| {
                        CoreError::io_data("snapshot checkpoint has no catalog field")
                    })?;
                // Intern the snapshot's *own* parsed catalog (not the
                // session config's): substituting its serialised form back
                // on decode is then exactly inverse, byte for byte.
                let catalog = <Catalog as Deserialize>::from_json_value(&slot.1)
                    .map_err(|e| CoreError::io_data(format!("parse snapshot catalog: {e}")))?;
                let id = self.intern_catalog(&Arc::new(catalog))?;
                slot.1 = Value::Int(id.0 as i128);
                WireEvent::Snapshot {
                    snapshot,
                    ops: *ops,
                    last_shown: last_shown.clone(),
                }
            }
        })
    }
}

/// One shard's durable journal: write buffer + segment files + intern table.
pub(crate) struct ShardLog {
    dir: PathBuf,
    knobs: WriteKnobs,
    writer: SegmentWriter,
    faults: FaultInjector,
    stats: LogStats,
}

impl ShardLog {
    /// Creates an empty shard log (fresh directory, committed generation 0).
    pub(crate) fn create(dir: PathBuf, config: &DurabilityConfig) -> Result<Self> {
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create shard directory", e))?;
        let knobs = WriteKnobs::from_config(config);
        let mut faults = FaultInjector::new(config.fault_plan.clone());
        commit_marker(&dir, 0, &mut faults)?;
        Ok(ShardLog {
            writer: SegmentWriter::new(dir.clone(), knobs, 0, 0),
            dir,
            knobs,
            faults,
            stats: LogStats::default(),
        })
    }

    /// Reopens a shard directory, returning the log positioned for new
    /// appends plus every recovered event in append order.
    ///
    /// Recovery reads the newest *committed* generation (highest marker),
    /// sweeps files of any other generation (stale pre- or mid-compaction
    /// leftovers), and tolerates a torn record at the tail of the newest
    /// segment by truncating the file back to its last clean record.
    ///
    /// Fault-plan hit counters start fresh: the plan describes the *new*
    /// process, not the one that wrote the recovered bytes.
    pub(crate) fn recover(
        dir: PathBuf,
        config: &DurabilityConfig,
    ) -> Result<(Self, Vec<(SessionId, SessionEvent)>)> {
        let mut markers: Vec<u64> = Vec::new();
        let mut segments: Vec<(u64, u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, "read shard directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, "read shard directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(generation) = parse_marker_name(name) {
                markers.push(generation);
            } else if let Some((generation, sequence)) = parse_segment_name(name) {
                segments.push((generation, sequence, entry.path()));
            }
        }
        let generation = markers.iter().copied().max().ok_or_else(|| {
            CoreError::io_data(format!(
                "shard directory {} has no committed generation marker",
                dir.display()
            ))
        })?;

        // Sweep everything that is not part of the committed generation:
        // superseded generations and half-written compaction output.
        for &stale in markers.iter().filter(|&&g| g != generation) {
            let path = dir.join(marker_name(stale));
            fs::remove_file(&path).map_err(|e| io_err(&path, "sweep stale marker", e))?;
        }
        segments.retain(|(g, _, path)| {
            if *g == generation {
                return true;
            }
            // Best-effort sweep; a leftover costs bytes, not correctness.
            let _ = fs::remove_file(path);
            false
        });
        segments.sort_by_key(|(_, sequence, _)| *sequence);

        let mut records: Vec<WireRecord> = Vec::new();
        let mut next_sequence = 0;
        let last = segments.len().saturating_sub(1);
        for (index, (_, sequence, path)) in segments.iter().enumerate() {
            next_sequence = sequence + 1;
            let bytes = fs::read(path).map_err(|e| io_err(path, "read segment", e))?;
            let decoded = decode_segment(&bytes)?;
            if let Some(reason) = decoded.torn {
                if index != last {
                    return Err(CoreError::io_data(format!(
                        "sealed segment {} is corrupt ({reason})",
                        path.display()
                    )));
                }
                // Torn tail on the newest segment: truncate at corruption.
                if decoded.clean_len < SEGMENT_HEADER_LEN as u64 {
                    fs::remove_file(path).map_err(|e| io_err(path, "drop torn segment", e))?;
                } else {
                    let file = fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err(path, "reopen torn segment", e))?;
                    file.set_len(decoded.clean_len)
                        .and_then(|()| file.sync_all())
                        .map_err(|e| io_err(path, "truncate torn segment", e))?;
                }
            }
            records.extend(decoded.records);
        }

        let knobs = WriteKnobs::from_config(config);
        let mut log = ShardLog {
            writer: SegmentWriter::new(dir.clone(), knobs, generation, next_sequence),
            dir,
            knobs,
            faults: FaultInjector::new(config.fault_plan.clone()),
            stats: LogStats::default(),
        };

        // Resolve interned references in one forward pass, re-seeding the
        // intern table so new appends reuse the recovered definitions.
        let mut catalog_values: HashMap<u64, Value> = HashMap::new();
        let mut events = Vec::new();
        for record in records {
            match record {
                WireRecord::Catalog { id, catalog } => {
                    if id.0 as usize != log.writer.catalogs.len() {
                        return Err(CoreError::io_data(format!(
                            "catalog definition {} out of order (expected {})",
                            id.0,
                            log.writer.catalogs.len()
                        )));
                    }
                    catalog_values.insert(id.0, catalog.to_json_value());
                    let fingerprint = catalog_fingerprint(&catalog);
                    log.writer.intern.entry(fingerprint).or_default().push(id);
                    log.writer.catalogs.push(Arc::new(catalog));
                }
                WireRecord::Event { session, event } => {
                    events.push((session, log.wire_to_event(event, &catalog_values)?));
                }
            }
        }
        Ok((log, events))
    }

    /// Buffers one event (plus any new catalog definition it needs), group
    /// committing when the window fills.  Failures roll the buffer back —
    /// see [`SegmentWriter::append`].
    pub(crate) fn append(&mut self, session: SessionId, event: &SessionEvent) -> Result<()> {
        let ShardLog {
            writer,
            faults,
            stats,
            ..
        } = self;
        writer.append(session, event, faults, stats)
    }

    /// Writes the buffered batch to the active segment (one group commit).
    pub(crate) fn flush(&mut self) -> Result<()> {
        let ShardLog {
            writer,
            faults,
            stats,
            ..
        } = self;
        writer.flush(faults, stats)
    }

    /// Flushes and `fsync`s the active segment: everything appended so far
    /// survives a crash.
    pub(crate) fn sync(&mut self) -> Result<()> {
        let ShardLog {
            writer,
            faults,
            stats,
            ..
        } = self;
        writer.sync(faults, stats)
    }

    /// Rewrites the log as a fresh generation holding exactly `records`
    /// (checkpoint-anchored compaction's disk half).
    ///
    /// The new generation is built in a scratch [`SegmentWriter`], synced,
    /// and committed by its marker *before* this log switches over and the
    /// old generation is deleted.  On any failure — injected or real — the
    /// scratch output is swept best-effort and `self` is untouched: the
    /// old generation stays committed and appendable, exactly as if the
    /// rewrite had never been attempted (the invariant recovery offers for
    /// crashes, extended to in-process IO failure).
    pub(crate) fn rewrite<'a>(
        &mut self,
        records: impl IntoIterator<Item = (SessionId, &'a SessionEvent)>,
    ) -> Result<()> {
        self.sync()?;
        self.faults
            .check(FaultSite::Rewrite)
            .map_err(|e| io_err(&self.dir, "begin rewrite", e))?;
        let old_generation = self.writer.generation;
        let old_bytes = self.generation_bytes(old_generation)?;
        let new_generation = old_generation + 1;

        let mut scratch = SegmentWriter::new(self.dir.clone(), self.knobs, new_generation, 0);
        let built = (|| -> Result<()> {
            for (session, event) in records {
                scratch.append(session, event, &mut self.faults, &mut self.stats)?;
            }
            scratch.sync(&mut self.faults, &mut self.stats)?;
            commit_marker(&self.dir, new_generation, &mut self.faults)
        })();
        if let Err(error) = built {
            // The new generation never committed: sweep its files
            // best-effort (recovery would sweep any leftovers too) and
            // keep appending to the old generation.
            drop(scratch);
            let mut sequence = 0;
            loop {
                let path = self.dir.join(segment_name(new_generation, sequence));
                if !path.exists() {
                    break;
                }
                let _ = fs::remove_file(&path);
                sequence += 1;
            }
            return Err(error);
        }

        // The new generation is committed; the old one is garbage now.
        self.writer = scratch;
        let old_marker = self.dir.join(marker_name(old_generation));
        fs::remove_file(&old_marker).map_err(|e| io_err(&old_marker, "remove old marker", e))?;
        let mut sequence = 0;
        loop {
            let path = self.dir.join(segment_name(old_generation, sequence));
            if !path.exists() {
                break;
            }
            fs::remove_file(&path).map_err(|e| io_err(&path, "remove old segment", e))?;
            sequence += 1;
        }
        let new_bytes = self.generation_bytes(new_generation)?;
        self.stats.bytes_reclaimed += old_bytes.saturating_sub(new_bytes) as usize;
        Ok(())
    }

    /// Total bytes of this shard's directory (all segment files + markers).
    pub(crate) fn disk_bytes(&self) -> Result<u64> {
        let mut total = 0;
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read shard directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read shard directory", e))?;
            total += entry
                .metadata()
                .map_err(|e| io_err(&entry.path(), "stat", e))?
                .len();
        }
        Ok(total)
    }

    pub(crate) fn stats(&self) -> LogStats {
        LogStats {
            injected_faults: self.faults.injected() as usize,
            ..self.stats
        }
    }

    fn generation_bytes(&self, generation: u64) -> Result<u64> {
        let mut total = 0;
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read shard directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read shard directory", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if parse_segment_name(name).is_some_and(|(g, _)| g == generation) {
                total += entry
                    .metadata()
                    .map_err(|e| io_err(&entry.path(), "stat", e))?
                    .len();
            }
        }
        Ok(total)
    }

    /// Resolves a recovered wire event back to a journal event, using the
    /// recovered definitions (`catalog_values` caches their `Value` form so
    /// snapshot reconstruction is one substitution, not a reserialisation).
    fn wire_to_event(
        &self,
        event: WireEvent,
        catalog_values: &HashMap<u64, Value>,
    ) -> Result<SessionEvent> {
        Ok(match event {
            WireEvent::Created {
                catalog,
                profile,
                max_package_size,
                spec,
                seed,
            } => {
                let shared = self
                    .writer
                    .catalogs
                    .get(catalog.0 as usize)
                    .ok_or_else(|| {
                        CoreError::io_data(format!("dangling catalog reference {}", catalog.0))
                    })?
                    .clone();
                SessionEvent::Created {
                    config: SessionConfig {
                        catalog: shared,
                        profile,
                        max_package_size,
                        spec,
                        seed,
                    },
                }
            }
            WireEvent::Presented => SessionEvent::Presented,
            WireEvent::Feedback(feedback) => SessionEvent::Feedback(feedback),
            WireEvent::Recommended => SessionEvent::Recommended,
            WireEvent::Snapshot {
                mut snapshot,
                ops,
                last_shown,
            } => {
                let Value::Object(entries) = &mut snapshot else {
                    return Err(CoreError::io_data(
                        "recovered snapshot checkpoint is not a JSON object",
                    ));
                };
                let slot = entries
                    .iter_mut()
                    .find(|(key, _)| key == "catalog")
                    .ok_or_else(|| CoreError::io_data("recovered snapshot has no catalog field"))?;
                let id = slot
                    .1
                    .as_i128()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| {
                        CoreError::io_data("recovered snapshot catalog reference is not an id")
                    })?;
                slot.1 = catalog_values
                    .get(&id)
                    .ok_or_else(|| CoreError::io_data(format!("dangling catalog reference {id}")))?
                    .clone();
                let json = serde_json::to_string(&snapshot)
                    .map_err(|e| CoreError::io_data(format!("reserialise snapshot: {e}")))?;
                SessionEvent::Snapshot {
                    json,
                    ops,
                    last_shown,
                }
            }
        })
    }
}

impl Drop for ShardLog {
    /// Best-effort flush on graceful drop; a killed process (no drop) loses
    /// at most the unflushed group-commit window, which recovery tolerates.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecommenderSpec;
    use crate::fault::FaultKind;
    use pkgrec_core::{EngineConfig, Feedback, Profile};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pkgrec-durable-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.9, 0.8]]).unwrap()
    }

    fn session_config(seed: u64, catalog: &Arc<Catalog>) -> SessionConfig {
        SessionConfig {
            catalog: catalog.clone(),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 20,
                ..EngineConfig::default()
            }),
            seed,
        }
    }

    /// A synthetic snapshot-checkpoint JSON embedding the catalog the way a
    /// real [`SessionSnapshot`](pkgrec_core::SessionSnapshot) does.
    fn snapshot_json(catalog: &Catalog) -> String {
        let value = Value::Object(vec![
            ("version".into(), Value::Number(1.0)),
            ("catalog".into(), catalog.to_json_value()),
            ("rounds".into(), Value::Number(2.0)),
        ]);
        serde_json::to_string(&value).unwrap()
    }

    fn sample_events(catalog: &Arc<Catalog>) -> Vec<(SessionId, SessionEvent)> {
        vec![
            (
                SessionId(0),
                SessionEvent::Created {
                    config: session_config(7, catalog),
                },
            ),
            (SessionId(0), SessionEvent::Presented),
            (
                SessionId(0),
                SessionEvent::Feedback(Feedback::Click { index: 1 }),
            ),
            (
                SessionId(1),
                SessionEvent::Created {
                    config: session_config(8, catalog),
                },
            ),
            (
                SessionId(0),
                SessionEvent::Snapshot {
                    json: snapshot_json(catalog),
                    ops: 2,
                    last_shown: Vec::new(),
                },
            ),
            (SessionId(1), SessionEvent::Recommended),
        ]
    }

    #[test]
    fn append_sync_recover_round_trips_with_shared_catalogs() {
        let dir = temp_dir("round-trip");
        let shared = Arc::new(catalog());
        let events = sample_events(&shared);
        let config = DurabilityConfig {
            flush_every_ops: 2,
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        for (session, event) in &events {
            log.append(*session, event).unwrap();
        }
        log.sync().unwrap();
        assert!(log.stats().group_commits >= 2, "group commit batches");
        drop(log);

        let (recovered, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed, events);
        // Both Created events and the Snapshot reference ONE interned
        // catalog, and recovery shares one Arc across them.
        assert_eq!(recovered.writer.catalogs.len(), 1);
        let (SessionEvent::Created { config: a }, SessionEvent::Created { config: b }) =
            (&replayed[0].1, &replayed[3].1)
        else {
            panic!("created events expected");
        };
        assert!(Arc::ptr_eq(&a.catalog, &b.catalog));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_checkpoints_survive_interning_byte_for_byte() {
        let dir = temp_dir("snapshot-bytes");
        let shared = Arc::new(catalog());
        let original = snapshot_json(&shared);
        let config = DurabilityConfig::at(&dir);
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        log.append(
            SessionId(3),
            &SessionEvent::Snapshot {
                json: original.clone(),
                ops: 4,
                last_shown: Vec::new(),
            },
        )
        .unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        let SessionEvent::Snapshot { json, .. } = &replayed[0].1 else {
            panic!("snapshot expected");
        };
        assert_eq!(json, &original);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = temp_dir("rotation");
        let shared = Arc::new(catalog());
        let config = DurabilityConfig {
            flush_every_ops: 1,
            segment_max_bytes: 256,
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        let events = sample_events(&shared);
        for _ in 0..4 {
            for (session, event) in &events {
                log.append(*session, event).unwrap();
            }
        }
        log.sync().unwrap();
        assert!(
            log.stats().segments_written > 1,
            "rotation produced segments"
        );
        drop(log);
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed.len(), events.len() * 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_truncate_but_sealed_corruption_is_fatal() {
        let dir = temp_dir("torn");
        let shared = Arc::new(catalog());
        let config = DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        let events = sample_events(&shared);
        for (session, event) in &events {
            log.append(*session, event).unwrap();
        }
        log.sync().unwrap();
        drop(log);

        // Tear the tail of the only (= newest) segment: recovery truncates
        // and returns the clean prefix.
        let seg = dir.join(segment_name(0, 0));
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap();
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed.len(), events.len() - 1);
        assert_eq!(replayed[..], events[..events.len() - 1]);

        // The same corruption in a *sealed* (non-newest) segment is fatal.
        let torn = fs::read(&seg).unwrap();
        fs::write(&seg, &torn[..torn.len() - 3]).unwrap();
        let mut next = fs::File::create(dir.join(segment_name(0, 1))).unwrap();
        let mut header = Vec::new();
        write_header(&mut header);
        next.write_all(&header).unwrap();
        drop(next);
        assert!(matches!(
            ShardLog::recover(dir.clone(), &config),
            Err(CoreError::Io { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_commits_the_new_generation_before_dropping_the_old() {
        let dir = temp_dir("rewrite");
        let shared = Arc::new(catalog());
        let config = DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        let events = sample_events(&shared);
        for _ in 0..8 {
            for (session, event) in &events {
                log.append(*session, event).unwrap();
            }
        }
        log.sync().unwrap();
        let before = log.disk_bytes().unwrap();

        // Retain one copy of the history: the rewrite re-interns from
        // scratch and reclaims the rest.
        let retained: Vec<(SessionId, &SessionEvent)> =
            events.iter().map(|(s, e)| (*s, e)).collect();
        log.rewrite(retained).unwrap();
        let after = log.disk_bytes().unwrap();
        assert!(
            after < before,
            "compaction reclaims bytes ({before} -> {after})"
        );
        assert!(log.stats().bytes_reclaimed > 0);
        assert!(dir.join(marker_name(1)).exists());
        assert!(!dir.join(marker_name(0)).exists());
        assert!(!dir.join(segment_name(0, 0)).exists());

        // Appends keep working in the new generation, and recovery sees
        // exactly retained + appended.
        log.append(SessionId(1), &SessionEvent::Presented).unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed.len(), events.len() + 1);
        assert_eq!(replayed[..events.len()], events[..]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_durability_shapes_are_rejected() {
        let config = DurabilityConfig {
            flush_every_ops: 0,
            ..DurabilityConfig::at("unused")
        };
        assert!(config.validate().is_err());
        let config = DurabilityConfig {
            segment_max_bytes: 4,
            ..DurabilityConfig::at("unused")
        };
        assert!(config.validate().is_err());
        let config = DurabilityConfig {
            append_retry_budget: 0,
            ..DurabilityConfig::at("unused")
        };
        assert!(config.validate().is_err());
        assert!(DurabilityConfig::at("unused").validate().is_ok());
    }

    #[test]
    fn injected_flush_failure_rolls_the_failed_append_out_of_the_buffer() {
        let dir = temp_dir("fault-flush");
        let shared = Arc::new(catalog());
        let events = sample_events(&shared);
        // Window of 2: the second append triggers the first flush, which
        // the plan poisons once.
        let config = DurabilityConfig {
            flush_every_ops: 2,
            fault_plan: FaultPlan::once(FaultSite::Flush, 0, FaultKind::StorageFull),
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        log.append(events[0].0, &events[0].1).unwrap();
        let err = log.append(events[1].0, &events[1].1).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(log.stats().injected_faults, 1);
        // The failed append's bytes rolled back; the first (acked) event is
        // still buffered and reaches disk with later appends.
        for (session, event) in &events[2..] {
            log.append(*session, event).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        let mut expected = events.clone();
        expected.remove(1);
        assert_eq!(replayed, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_its_interned_catalog_definition() {
        let dir = temp_dir("fault-intern");
        let shared = Arc::new(catalog());
        // Write-through so the very first append (which interns the
        // catalog) hits the poisoned flush.
        let config = DurabilityConfig {
            flush_every_ops: 1,
            fault_plan: FaultPlan::once(FaultSite::Flush, 0, FaultKind::WriteZero),
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        let created = SessionEvent::Created {
            config: session_config(7, &shared),
        };
        let err = log.append(SessionId(0), &created).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Io {
                kind: std::io::ErrorKind::WriteZero,
                ..
            }
        ));
        assert!(
            log.writer.catalogs.is_empty(),
            "interned catalog rolled back"
        );
        assert!(log.writer.intern.is_empty());
        // Retrying re-interns at a dense id and recovery sees one catalog.
        log.append(SessionId(0), &created).unwrap();
        log.sync().unwrap();
        drop(log);
        let (recovered, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(recovered.writer.catalogs.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rewrite_leaves_the_old_generation_committed_and_appendable() {
        let dir = temp_dir("fault-rewrite");
        let shared = Arc::new(catalog());
        let events = sample_events(&shared);
        // Marker hit 0 is generation 0's create-time commit; hit 1 is the
        // rewrite's new-generation commit.
        let config = DurabilityConfig {
            flush_every_ops: 1,
            fault_plan: FaultPlan::once(FaultSite::Marker, 1, FaultKind::PermissionDenied),
            ..DurabilityConfig::at(&dir)
        };
        let mut log = ShardLog::create(dir.clone(), &config).unwrap();
        for (session, event) in &events {
            log.append(*session, event).unwrap();
        }
        log.sync().unwrap();

        let retained: Vec<(SessionId, &SessionEvent)> =
            events.iter().take(2).map(|(s, e)| (*s, e)).collect();
        let err = log.rewrite(retained).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Io {
                kind: std::io::ErrorKind::PermissionDenied,
                ..
            }
        ));
        // The old generation is still the committed truth and the scratch
        // output was swept.
        assert!(dir.join(marker_name(0)).exists());
        assert!(!dir.join(marker_name(1)).exists());
        assert!(!dir.join(segment_name(1, 0)).exists());

        // Appends continue in the old generation; a reopen replays the
        // full, uncompacted history plus the post-failure append.
        log.append(SessionId(1), &SessionEvent::Presented).unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, replayed) = ShardLog::recover(dir.clone(), &config).unwrap();
        assert_eq!(replayed.len(), events.len() + 1);
        assert_eq!(replayed[..events.len()], events[..]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
