//! The cross-shard **scoring service**: a shared submission queue that
//! batches pending `present` work from many shards into group-wide kernel
//! sweeps, plus the **adaptive admission policy** that decides per group
//! whether a sweep pays.
//!
//! Shard owners (the [`ServingLoop`](crate::ServingLoop) workers, the
//! `pkgrec-server` request workers, or a single-threaded driver via
//! [`SessionStore::present_many`](crate::SessionStore::present_many)) run
//! the *mutating* half of each present on their own shard
//! ([`Shard::prepare_presents`](crate::Shard::prepare_presents)), hand the
//! resulting [`PresentPrep`]s to [`ScoringService::submit`], and finish
//! with [`Shard::commit_present`](crate::Shard::commit_present) once the
//! verdicts come back.  The service groups submissions *fleet-wide* by
//! interned catalog handle (`Arc` pointer), profile and φ, concatenates
//! each group's sample pools into one stacked
//! [`WeightMatrix`](pkgrec_core::WeightMatrix) over the union candidate
//! slate, and runs a single [`score_stacked`] sweep per admitted group.
//!
//! Journaling, `(seed, ops)` RNG streams and rollback never leave the
//! owning shard, and every score cell is an independent dot product, so
//! the batch/serial choice can change *when* work is scored but never
//! *what* it computes: results are bit-identical to serial serving.  That
//! invariant is what lets the admission policy be a measured heuristic
//! rather than a correctness concern.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pkgrec_core::{score_stacked, Catalog, PresentPrep, Profile, StackedScores};
use serde::{Deserialize, Serialize};

/// How the admission policy decides whether a group's sweep is worth it.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionMode {
    /// Measured: group-size and queue-depth floors, then an EWMA
    /// comparison of observed per-session batched vs serial cost
    /// (optimistic — a group is admitted until measurements say
    /// otherwise).
    Adaptive,
    /// Every group is admitted (benchmarking the always-batch arm).
    Always,
    /// Every group falls back to serial scoring (the policy's off switch).
    Never,
    /// A scripted decision sequence, applied to groups in flush order and
    /// cycled when exhausted.  For property tests: *any* decision sequence
    /// must leave every session's results bit-identical to serial.
    Scripted(Vec<bool>),
}

/// Configuration of a [`ScoringService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoringConfig {
    /// The batching window: how long an open-mode flush leader waits for
    /// more submissions before sweeping, and the anti-straggler timeout of
    /// a lockstep rendezvous ([`ScoringService::with_workers`]).  Lockstep
    /// flushes as soon as every registered worker has checked in, so the
    /// window is an upper bound, not added latency; a zero window in open
    /// mode means "sweep whatever has accumulated, immediately" (the
    /// group-commit idiom — submissions arriving during a sweep form the
    /// next group).
    pub window: Duration,
    /// Groups smaller than this fall back to serial scoring.
    pub min_group: usize,
    /// Flushes with fewer than this many pending sessions in total decline
    /// every group — a shallow queue means batching has nothing to amortise.
    pub min_queue: usize,
    /// EWMA smoothing factor for the observed per-session costs, in
    /// `(0, 1]`; higher weighs recent rounds more.
    pub ewma_alpha: f64,
    /// The decision procedure.
    pub mode: AdmissionMode,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig {
            window: Duration::from_millis(2),
            min_group: 2,
            min_queue: 2,
            ewma_alpha: 0.25,
            mode: AdmissionMode::Adaptive,
        }
    }
}

/// The decision inputs and outcomes of an [`AdmissionPolicy`], exported so
/// the policy is auditable (benches record it next to the store counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Groups admitted to a shared sweep.
    pub admitted_groups: usize,
    /// Sessions those admitted groups contained.
    pub admitted_sessions: usize,
    /// Groups declined for being smaller than `min_group`.
    pub declined_small_group: usize,
    /// Groups declined because the whole flush was shallower than
    /// `min_queue` sessions.
    pub declined_shallow_queue: usize,
    /// Groups declined because the batched-cost EWMA exceeded the serial
    /// one.
    pub declined_cost: usize,
    /// Groups declined by a scripted or `Never` decision.
    pub declined_scripted: usize,
    /// Sessions across all declined groups (they scored serially).
    pub fallback_sessions: usize,
    /// EWMA of observed per-session batched sweep cost, in nanoseconds
    /// (`None` until the first admitted sweep is measured).
    pub batched_ns_per_session: Option<f64>,
    /// EWMA of observed per-session serial scoring cost, in nanoseconds
    /// (`None` until the first fallback is measured).
    pub serial_ns_per_session: Option<f64>,
}

/// The adaptive batch/serial decision procedure: static floors plus EWMAs
/// of the measured per-session cost of both paths.
///
/// The policy only ever picks *which* code path scores a group — both
/// paths compute bit-identical results — so a bad decision costs
/// microseconds, never correctness.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    mode: AdmissionMode,
    min_group: usize,
    min_queue: usize,
    alpha: f64,
    batched_ns: Option<f64>,
    serial_ns: Option<f64>,
    scripted_next: usize,
    snapshot: PolicySnapshot,
}

impl AdmissionPolicy {
    /// A policy implementing `config`'s mode and thresholds.
    pub fn new(config: &ScoringConfig) -> Self {
        AdmissionPolicy {
            mode: config.mode.clone(),
            min_group: config.min_group,
            min_queue: config.min_queue,
            alpha: config.ewma_alpha.clamp(f64::EPSILON, 1.0),
            batched_ns: None,
            serial_ns: None,
            scripted_next: 0,
            snapshot: PolicySnapshot::default(),
        }
    }

    /// Decides whether a group of `group_size` sessions, inside a flush of
    /// `queue_depth` pending sessions total, gets a shared sweep.
    pub fn admit(&mut self, group_size: usize, queue_depth: usize) -> bool {
        let admitted = match &self.mode {
            AdmissionMode::Always => true,
            AdmissionMode::Never => {
                self.snapshot.declined_scripted += 1;
                false
            }
            AdmissionMode::Scripted(decisions) => {
                let decision = if decisions.is_empty() {
                    false
                } else {
                    decisions[self.scripted_next % decisions.len()]
                };
                self.scripted_next += 1;
                if !decision {
                    self.snapshot.declined_scripted += 1;
                }
                decision
            }
            AdmissionMode::Adaptive => {
                if group_size < self.min_group {
                    self.snapshot.declined_small_group += 1;
                    false
                } else if queue_depth < self.min_queue {
                    self.snapshot.declined_shallow_queue += 1;
                    false
                } else {
                    match (self.batched_ns, self.serial_ns) {
                        // Measured on both arms and batching is losing:
                        // stand down until the serial EWMA drifts up.
                        (Some(batched), Some(serial)) if batched > serial => {
                            self.snapshot.declined_cost += 1;
                            false
                        }
                        // Optimistic until measured.
                        _ => true,
                    }
                }
            }
        };
        if admitted {
            self.snapshot.admitted_groups += 1;
            self.snapshot.admitted_sessions += group_size;
        } else {
            self.snapshot.fallback_sessions += group_size;
        }
        admitted
    }

    /// Feeds one admitted sweep's measured cost into the batched EWMA.
    pub fn observe_batched(&mut self, sessions: usize, elapsed: Duration) {
        let per_session = elapsed.as_nanos() as f64 / sessions.max(1) as f64;
        self.batched_ns = Some(Self::ewma(self.batched_ns, per_session, self.alpha));
        self.snapshot.batched_ns_per_session = self.batched_ns;
    }

    /// Feeds one serially scored session's measured cost into the serial
    /// EWMA.
    pub fn observe_serial(&mut self, sessions: usize, elapsed: Duration) {
        let per_session = elapsed.as_nanos() as f64 / sessions.max(1) as f64;
        self.serial_ns = Some(Self::ewma(self.serial_ns, per_session, self.alpha));
        self.snapshot.serial_ns_per_session = self.serial_ns;
    }

    fn ewma(previous: Option<f64>, sample: f64, alpha: f64) -> f64 {
        match previous {
            Some(previous) => alpha * sample + (1.0 - alpha) * previous,
            None => sample,
        }
    }

    /// The auditable decision counters.
    pub fn snapshot(&self) -> PolicySnapshot {
        self.snapshot
    }
}

/// One session's pending present, handed to the service by the shard that
/// owns the session (see
/// [`Shard::prepare_presents`](crate::Shard::prepare_presents)).
#[derive(Debug)]
pub struct Submission {
    /// The session's interned catalog handle — groups compare it by
    /// pointer, which is why the store interns content-equal catalogs.
    pub catalog: Arc<Catalog>,
    /// The session's scoring profile (part of the group key).
    pub profile: Profile,
    /// The session's maximum package size φ (part of the group key).
    pub max_package_size: usize,
    /// The prepared present round (discovery artefacts + pool copy).
    pub prep: PresentPrep,
}

/// What the service decided and computed for one [`Submission`]; returned
/// positionally aligned with the submitted batch.  The prep travels back
/// so a declined session can score locally without re-running discovery.
#[derive(Debug)]
pub struct Verdict {
    /// The prep the submission carried, returned to its owner.
    pub prep: PresentPrep,
    /// The admission outcome.
    pub outcome: VerdictOutcome,
}

/// The two ways a submission comes back.
#[derive(Debug)]
pub enum VerdictOutcome {
    /// Admitted: read this session's rankings out of the shared sweep.
    Batched {
        /// The group's one stacked sweep, shared by every member.
        scores: Arc<StackedScores>,
        /// This session's member index into the stack.
        member: usize,
        /// Whether this session was the group's first member — the one
        /// whose shard accounts the group in its counters.
        group_lead: bool,
    },
    /// Declined by the admission policy: score the prep locally (a
    /// singleton stack computes exactly the serial result).
    Fallback,
}

struct ServiceState {
    policy: AdmissionPolicy,
    /// Lockstep rendezvous: how many registered workers a flush waits for
    /// (0 = open mode, flush on the window alone).
    expected: usize,
    /// Submit calls since the last flush (lockstep check-ins, including
    /// empty ones).
    arrived: usize,
    /// Pending submissions in ticket order.
    pending: Vec<(u64, Vec<Submission>)>,
    /// When the current accumulation cycle opened (first pending arrival).
    cycle_opened: Option<Instant>,
    /// A flush leader is sweeping outside the lock.
    sweeping: bool,
    /// Finished verdicts awaiting pickup, keyed by ticket.
    results: Vec<(u64, Vec<Verdict>)>,
    next_ticket: u64,
}

/// The shared submission queue + batcher.  One instance serves a whole
/// fleet; it is `Sync` and meant to be shared by reference (or `Arc`)
/// across shard-owning worker threads.
///
/// Two flush disciplines cover the two serving shapes:
///
/// * **lockstep** ([`ScoringService::with_workers`]) — round-synchronous
///   drivers like [`ServingLoop`](crate::ServingLoop): a flush fires as
///   soon as every registered worker has checked in (empty submissions
///   count), with [`ScoringConfig::window`] as the anti-straggler bound;
///   workers that finish for good [`depart`](ScoringWorker) so the
///   rendezvous shrinks,
/// * **open** ([`ScoringService::new`]) — request loops: the first
///   submitter leads, sweeping immediately at a zero window (submissions
///   arriving during a sweep form the next group — the group-commit
///   idiom) or waiting up to the window for company.
pub struct ScoringService {
    window: Duration,
    state: Mutex<ServiceState>,
    arrivals: Condvar,
}

impl ScoringService {
    /// An open-mode service (request loops; no rendezvous).
    pub fn new(config: ScoringConfig) -> Self {
        Self::with_expected(config, 0)
    }

    /// A lockstep service expecting `workers` round-synchronous submitters.
    pub fn with_workers(config: ScoringConfig, workers: usize) -> Self {
        Self::with_expected(config, workers)
    }

    fn with_expected(config: ScoringConfig, expected: usize) -> Self {
        ScoringService {
            window: config.window,
            state: Mutex::new(ServiceState {
                policy: AdmissionPolicy::new(&config),
                expected,
                arrived: 0,
                pending: Vec::new(),
                cycle_opened: None,
                sweeping: false,
                results: Vec::new(),
                next_ticket: 0,
            }),
            arrivals: Condvar::new(),
        }
    }

    /// Registers this thread as one of the lockstep workers; dropping the
    /// handle departs the rendezvous so the remaining workers stop waiting
    /// for it.
    pub fn worker(&self) -> ScoringWorker<'_> {
        ScoringWorker { service: self }
    }

    /// Submits one round of pending work and blocks until the flush that
    /// covers it completes.  Returns the verdicts (positionally aligned
    /// with `submissions`) and the wall-clock time spent blocked — the
    /// batching wait the caller attributes to its shard's
    /// [`batch_wait_us`](crate::StoreStats::batch_wait_us).
    ///
    /// An empty submission is a valid lockstep check-in: it unblocks the
    /// rendezvous and returns no verdicts.
    pub fn submit(&self, submissions: Vec<Submission>) -> (Vec<Verdict>, Duration) {
        self.submit_inner(submissions, false)
    }

    /// Like [`ScoringService::submit`] but flushes immediately instead of
    /// waiting out the window or rendezvous — the entry point for
    /// single-threaded drivers that have already gathered the whole
    /// fleet's round (e.g.
    /// [`SessionStore::present_many`](crate::SessionStore::present_many)).
    pub fn submit_now(&self, submissions: Vec<Submission>) -> (Vec<Verdict>, Duration) {
        self.submit_inner(submissions, true)
    }

    fn submit_inner(
        &self,
        submissions: Vec<Submission>,
        flush_now: bool,
    ) -> (Vec<Verdict>, Duration) {
        let entered = Instant::now();
        let mut state = self.state.lock().expect("scoring service poisoned");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if state.cycle_opened.is_none() {
            state.cycle_opened = Some(entered);
        }
        state.pending.push((ticket, submissions));
        state.arrived += 1;
        // Wake any waiter whose rendezvous this arrival may complete.
        self.arrivals.notify_all();
        loop {
            if let Some(at) = state.results.iter().position(|(t, _)| *t == ticket) {
                let (_, verdicts) = state.results.swap_remove(at);
                return (verdicts, entered.elapsed());
            }
            let ours_pending = state.pending.iter().any(|(t, _)| *t == ticket);
            if ours_pending && !state.sweeping {
                let all_in = state.expected > 0 && state.arrived >= state.expected;
                let window_over = state
                    .cycle_opened
                    .is_none_or(|opened| opened.elapsed() >= self.window);
                if flush_now || all_in || window_over {
                    state = self.flush(state);
                    continue;
                }
            }
            // Short ticks guard against missed wakeups (and bound how stale
            // the window/rendezvous re-check can get); the notifies above
            // make the common case prompt.
            let (next, _) = self
                .arrivals
                .wait_timeout(state, Duration::from_millis(1))
                .expect("scoring service poisoned");
            state = next;
        }
    }

    /// Runs one flush: takes the pending batch, groups it, applies the
    /// admission policy, sweeps admitted groups *outside* the lock, then
    /// deposits verdicts.  Returns with the lock re-held.
    fn flush<'a>(
        &'a self,
        mut state: MutexGuard<'a, ServiceState>,
    ) -> MutexGuard<'a, ServiceState> {
        state.sweeping = true;
        let batch = std::mem::take(&mut state.pending);
        state.arrived = 0;
        state.cycle_opened = None;

        // Flatten in ticket order (deterministic grouping: first appearance
        // over the flattened batch, mirroring `Shard::op_present_batch`).
        let mut tickets: Vec<u64> = Vec::with_capacity(batch.len());
        let mut flat: Vec<(u64, Submission)> = Vec::new();
        for (ticket, submissions) in batch {
            tickets.push(ticket);
            for submission in submissions {
                flat.push((ticket, submission));
            }
        }
        let queue_depth = flat.len();
        let mut groups: Vec<(Vec<usize>, bool)> = Vec::new();
        let mut leads: Vec<usize> = Vec::new();
        for (at, (_, submission)) in flat.iter().enumerate() {
            match leads.iter().position(|&lead| {
                let first = &flat[lead].1;
                Arc::ptr_eq(&first.catalog, &submission.catalog)
                    && first.profile == submission.profile
                    && first.max_package_size == submission.max_package_size
            }) {
                Some(group) => groups[group].0.push(at),
                None => {
                    leads.push(at);
                    groups.push((vec![at], false));
                }
            }
        }
        for (members, admit) in groups.iter_mut() {
            *admit = state.policy.admit(members.len(), queue_depth);
        }

        // Sweep outside the lock: new submissions can queue up for the next
        // flush while the kernel runs.
        drop(state);
        let mut outcomes: Vec<Option<VerdictOutcome>> = (0..flat.len()).map(|_| None).collect();
        let mut observations: Vec<(usize, Duration)> = Vec::new();
        for (members, admit) in &groups {
            if *admit {
                let preps: Vec<&PresentPrep> = members.iter().map(|&at| &flat[at].1.prep).collect();
                let started = Instant::now();
                let scores = Arc::new(score_stacked(&preps));
                observations.push((members.len(), started.elapsed()));
                for (member, &at) in members.iter().enumerate() {
                    outcomes[at] = Some(VerdictOutcome::Batched {
                        scores: Arc::clone(&scores),
                        member,
                        group_lead: member == 0,
                    });
                }
            } else {
                for &at in members {
                    outcomes[at] = Some(VerdictOutcome::Fallback);
                }
            }
        }

        let mut state = self.state.lock().expect("scoring service poisoned");
        for (sessions, elapsed) in observations {
            state.policy.observe_batched(sessions, elapsed);
        }
        // Reassemble per-ticket verdicts in submission order (flat is
        // ticket-major, index-minor), including empty check-ins.
        let mut deposits: Vec<(u64, Vec<Verdict>)> =
            tickets.into_iter().map(|t| (t, Vec::new())).collect();
        for ((ticket, submission), outcome) in flat.into_iter().zip(outcomes) {
            let slot = deposits
                .iter_mut()
                .find(|(t, _)| *t == ticket)
                .expect("every flat entry has a ticket deposit");
            slot.1.push(Verdict {
                prep: submission.prep,
                outcome: outcome.expect("every submission got an outcome"),
            });
        }
        state.results.extend(deposits);
        state.sweeping = false;
        self.arrivals.notify_all();
        state
    }

    /// Feeds a declined session's measured local scoring cost back into
    /// the policy's serial EWMA.
    pub fn observe_serial(&self, sessions: usize, elapsed: Duration) {
        let mut state = self.state.lock().expect("scoring service poisoned");
        state.policy.observe_serial(sessions, elapsed);
    }

    /// The policy's auditable decision counters, as of now.
    pub fn policy_snapshot(&self) -> PolicySnapshot {
        self.state
            .lock()
            .expect("scoring service poisoned")
            .policy
            .snapshot()
    }

    fn depart(&self) {
        let mut state = self.state.lock().expect("scoring service poisoned");
        state.expected = state.expected.saturating_sub(1);
        self.arrivals.notify_all();
    }
}

/// A lockstep worker's registration handle (see
/// [`ScoringService::worker`]); dropping it departs the rendezvous.
pub struct ScoringWorker<'a> {
    service: &'a ScoringService,
}

impl ScoringWorker<'_> {
    /// Submits this worker's round; see [`ScoringService::submit`].
    pub fn submit(&self, submissions: Vec<Submission>) -> (Vec<Verdict>, Duration) {
        self.service.submit(submissions)
    }

    /// The underlying service (for [`ScoringService::observe_serial`]
    /// etc.).
    pub fn service(&self) -> &ScoringService {
        self.service
    }
}

impl Drop for ScoringWorker<'_> {
    fn drop(&mut self) {
        self.service.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mode: AdmissionMode) -> ScoringConfig {
        ScoringConfig {
            mode,
            ..ScoringConfig::default()
        }
    }

    #[test]
    fn adaptive_policy_applies_floors_then_costs() {
        let mut policy = AdmissionPolicy::new(&config(AdmissionMode::Adaptive));
        // Optimistic before any measurements.
        assert!(policy.admit(2, 4));
        // Group-size floor.
        assert!(!policy.admit(1, 4));
        // Queue-depth floor.
        assert!(!policy.admit(2, 1));
        // Batched measured slower than serial: decline.
        policy.observe_batched(1, Duration::from_micros(100));
        policy.observe_serial(1, Duration::from_micros(10));
        assert!(!policy.admit(4, 8));
        // Serial EWMA drifting above batched re-admits.
        for _ in 0..64 {
            policy.observe_serial(1, Duration::from_millis(10));
        }
        assert!(policy.admit(4, 8));
        let snapshot = policy.snapshot();
        assert_eq!(snapshot.admitted_groups, 2);
        assert_eq!(snapshot.admitted_sessions, 6);
        assert_eq!(snapshot.declined_small_group, 1);
        assert_eq!(snapshot.declined_shallow_queue, 1);
        assert_eq!(snapshot.declined_cost, 1);
        assert_eq!(snapshot.fallback_sessions, 7);
        assert!(snapshot.batched_ns_per_session.is_some());
        assert!(snapshot.serial_ns_per_session.is_some());
    }

    #[test]
    fn scripted_policy_cycles_its_decisions() {
        let mut policy =
            AdmissionPolicy::new(&config(AdmissionMode::Scripted(vec![true, false, false])));
        let decisions: Vec<bool> = (0..6).map(|_| policy.admit(3, 9)).collect();
        assert_eq!(decisions, vec![true, false, false, true, false, false]);
        assert_eq!(policy.snapshot().declined_scripted, 4);
    }

    #[test]
    fn never_mode_declines_everything_always_mode_admits_everything() {
        let mut never = AdmissionPolicy::new(&config(AdmissionMode::Never));
        let mut always = AdmissionPolicy::new(&config(AdmissionMode::Always));
        for _ in 0..4 {
            assert!(!never.admit(8, 32));
            // `Always` ignores the floors too.
            assert!(always.admit(1, 1));
        }
        assert_eq!(never.snapshot().fallback_sessions, 32);
        assert_eq!(always.snapshot().admitted_sessions, 4);
    }

    #[test]
    fn empty_lockstep_checkins_rendezvous_and_return() {
        // Four workers, nothing to score: every submit must still return
        // (the all-in rendezvous fires on check-ins, not submissions).
        let service = ScoringService::with_workers(
            ScoringConfig {
                window: Duration::from_secs(5),
                ..ScoringConfig::default()
            },
            4,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let worker = service.worker();
                        let (verdicts, _) = worker.submit(Vec::new());
                        assert!(verdicts.is_empty());
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
        });
    }

    #[test]
    fn departed_workers_shrink_the_rendezvous() {
        // Expect 2 workers; one departs without ever submitting.  The
        // remaining worker's submit must complete on the shrunken
        // rendezvous instead of waiting out the 5s window.
        let service = ScoringService::with_workers(
            ScoringConfig {
                window: Duration::from_secs(5),
                ..ScoringConfig::default()
            },
            2,
        );
        drop(service.worker());
        let started = Instant::now();
        let worker = service.worker();
        let (verdicts, _) = worker.submit(Vec::new());
        assert!(verdicts.is_empty());
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "submit rendezvoused on the shrunken worker count"
        );
    }
}
