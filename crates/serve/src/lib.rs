//! # pkgrec-serve
//!
//! The session-serving layer of the `pkgrec` workspace: the paper's
//! interactive elicitation loop is inherently *per-user session state*
//! (preference DAG, sample pool, prior), and this crate owns the lifecycle
//! of many such sessions at once so application code never has to.
//!
//! Three pieces compose the layer:
//!
//! * [`SessionStore`] — a sharded map of sessions (hash by [`SessionId`],
//!   `&mut`-splittable shards, no locks) with LRU capacity eviction that
//!   spills cold sessions to snapshots and rehydrates them on demand,
//! * [`Journal`] — an append-only log of session events; [`Journal::replay`]
//!   reconstructs any session *bit-identically*, so the journal — not the
//!   process — is the durable form of a session (in the spirit of
//!   log-structured systems such as LogBase),
//! * [`ServingLoop`] — a [`std::thread::scope`] driver that steps many
//!   concurrent simulated sessions shard-parallel through the *generic*
//!   core elicitation driver, with outcomes independent of thread count,
//!   shard count and capacity pressure.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//!
//! use pkgrec_core::prelude::*;
//! use pkgrec_serve::{RecommenderSpec, SessionConfig, SessionStore, StoreConfig};
//!
//! // A store with 2 shards, each keeping up to 8 sessions live in memory.
//! let mut store = SessionStore::new(StoreConfig { shards: 2, capacity_per_shard: 8 }).unwrap();
//!
//! // Create a session: the config is plain serde data — catalog, profile,
//! // φ, recommender recipe and a deterministic seed.  The catalog sits
//! // behind an Arc so a whole fleet shares one copy.
//! let catalog = Arc::new(Catalog::from_rows(vec![
//!     vec![0.6, 0.2],
//!     vec![0.4, 0.4],
//!     vec![0.2, 0.4],
//!     vec![0.9, 0.8],
//! ]).unwrap());
//! let id = store.create(SessionConfig {
//!     catalog,
//!     profile: Profile::cost_quality(),
//!     max_package_size: 2,
//!     spec: RecommenderSpec::Engine(EngineConfig {
//!         k: 2,
//!         num_random: 2,
//!         num_samples: 20,
//!         ..EngineConfig::default()
//!     }),
//!     seed: 7,
//! }).unwrap();
//!
//! // Drive it: no RNG to thread through — every operation derives its
//! // stream from (seed, operation index), which is what makes the journal
//! // replayable and the serving loop scheduling-independent.
//! let shown = store.present(id).unwrap();
//! store.feedback(id, Feedback::Click { index: 0 }).unwrap();
//! let before = store.recommend(id).unwrap();
//!
//! // Evict the session (it spills to a snapshot checkpoint in the journal)
//! // and touch it again: it rehydrates bit-identically.
//! store.evict(id).unwrap();
//! assert!(!store.is_live(id).unwrap());
//! assert_eq!(store.recommend(id).unwrap(), before);
//!
//! // The journal alone rebuilds the whole store (e.g. after a restart).
//! let journal = store.export_journal();
//! let mut reborn = SessionStore::from_journal(
//!     StoreConfig { shards: 4, capacity_per_shard: 8 }, &journal).unwrap();
//! assert_eq!(reborn.recommend(id).unwrap(), before);
//! ```
//!
//! To serve whole elicitation sessions concurrently, pair each session with
//! a [`SimulatedUser`](pkgrec_core::SimulatedUser) and hand the batch to
//! [`ServingLoop::run`]; the `serving` example and the `fig_serving` bench
//! drive 100+ sessions this way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod journal;
pub mod serving;
pub mod store;

pub use config::{
    op_rng, shard_of, user_rng, LiveSession, RecommenderSpec, SessionConfig, SessionId,
};
pub use journal::{Journal, JournalRecord, ReplayedSession, SessionEvent};
pub use serving::{ServingLoop, SessionDriver, SessionOutcome};
pub use store::{SessionStore, StoreConfig, StoreStats};
