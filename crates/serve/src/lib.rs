//! # pkgrec-serve
//!
//! The session-serving layer of the `pkgrec` workspace: the paper's
//! interactive elicitation loop is inherently *per-user session state*
//! (preference DAG, sample pool, prior), and this crate owns the lifecycle
//! of many such sessions at once so application code never has to.
//!
//! Five pieces compose the layer:
//!
//! * [`SessionStore`] — a sharded map of sessions (hash by [`SessionId`],
//!   `&mut`-splittable shards, no locks) with ordered-index LRU eviction
//!   that spills cold sessions to snapshot checkpoints and rehydrates them
//!   on demand,
//! * [`Journal`] — the in-memory append-only log of session events;
//!   [`Journal::replay`] reconstructs any session *bit-identically*, so
//!   the journal — not the process — is the authoritative form of a
//!   session (in the spirit of log-structured systems such as LogBase),
//! * the **durable journal** ([`DurabilityConfig`], [`SessionStore::open`])
//!   — per-shard segment files that make the log survive the process:
//!   every event is appended (group-committed, CRC-framed, catalogs
//!   interned) *before* it mutates memory, and reopening the directory
//!   replays the segments back into an identical store,
//! * [`ServingLoop`] — a [`std::thread::scope`] driver that steps many
//!   concurrent simulated sessions shard-parallel through the *generic*
//!   core elicitation driver, with outcomes independent of thread count,
//!   shard count and capacity pressure,
//! * the **cross-shard scoring service** ([`ScoringService`], the
//!   [`scoring`] module) — the seam that decomposes a present into
//!   [`Shard::prepare_presents`] → a [`Submission`] to a shared batcher
//!   → [`Shard::commit_present`]: the batcher groups the whole fleet's
//!   pending work by interned catalog, stacks each group into one kernel
//!   sweep, and an adaptive [`AdmissionPolicy`] (group-size / queue-depth
//!   floors, then an EWMA comparison of measured batched vs serial cost)
//!   falls work back to audited serial scoring when a sweep would not pay
//!   for itself.  Results are bit-identical to serial serving either way
//!   — journaling, `(seed, ops)` RNG draws and rollback never leave the
//!   shard; [`ServingLoop::run_scored`] drives it in-process (lockstep
//!   rendezvous), `pkgrec-server` drives it from the TCP request loop
//!   (open-mode group commit), and [`SessionStore::present_many`] is the
//!   single-threaded driver.  [`StoreStats`] audits every decision
//!   (`batched_sessions` / `admission_fallbacks` / `batch_wait_us`).
//!
//! ## The log is the database
//!
//! A durable store's directory is laid out as
//!
//! ```text
//! store/
//! ├── store.json                     manifest: wire version + shard count
//! ├── shard-0000/
//! │   ├── gen-00000001.ok            committed-generation marker
//! │   ├── seg-00000001-00000000.pkj  ┐ segment files, appended in order:
//! │   └── seg-00000001-00000001.pkj  ┘ header | [len|crc32|json record]*
//! └── shard-0001/ …
//! ```
//!
//! Records are catalog intern-table definitions or session events; a
//! `Created`/`Snapshot` stores a [`CatalogId`] reference, so a fleet
//! sharing one catalog writes its rows once per shard, not once per
//! session.  [`SessionStore::compact`] checkpoints live sessions and
//! rewrites each shard's retained tail into a fresh generation — the new
//! marker is committed before the old generation is deleted, so a crash at
//! any byte leaves exactly one recoverable generation.  Recovery
//! ([`SessionStore::open`]) tolerates a torn tail on the newest segment by
//! truncating at the last clean record boundary; corruption anywhere else
//! is an error, never silence.
//!
//! ## Quick start: survive a kill
//!
//! ```
//! use std::sync::Arc;
//!
//! use pkgrec_core::prelude::*;
//! use pkgrec_serve::{RecommenderSpec, SessionConfig, SessionStore, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("pkgrec-quickstart-{}", std::process::id()));
//! let config = StoreConfig { shards: 2, capacity_per_shard: 8 };
//! // A durable store: every event lands in `dir` before memory changes.
//! let mut store = SessionStore::open(&dir, config).unwrap();
//!
//! // Create a session: the config is plain serde data — catalog, profile,
//! // φ, recommender recipe and a deterministic seed.  The catalog sits
//! // behind an Arc in memory and an intern table on disk.
//! let catalog = Arc::new(Catalog::from_rows(vec![
//!     vec![0.6, 0.2],
//!     vec![0.4, 0.4],
//!     vec![0.2, 0.4],
//!     vec![0.9, 0.8],
//! ]).unwrap());
//! let id = store.create(SessionConfig {
//!     catalog,
//!     profile: Profile::cost_quality(),
//!     max_package_size: 2,
//!     spec: RecommenderSpec::Engine(EngineConfig {
//!         k: 2,
//!         num_random: 2,
//!         num_samples: 20,
//!         ..EngineConfig::default()
//!     }),
//!     seed: 7,
//! }).unwrap();
//!
//! // Drive it: no RNG to thread through — every operation derives its
//! // stream from (seed, operation index), which is what makes the journal
//! // replayable and the serving loop scheduling-independent.
//! let shown = store.present(id).unwrap();
//! store.feedback(id, Feedback::Click { index: 0 }).unwrap();
//! let before = store.recommend(id).unwrap();
//!
//! // Kill the process image: fsync, then drop without destructors.
//! store.sync().unwrap();
//! std::mem::forget(store);
//!
//! // Reopening the directory IS recovery: the segments replay into an
//! // identical store, and the session recommends exactly what the killed
//! // one would have.
//! let mut reborn = SessionStore::open(&dir, config).unwrap();
//! assert_eq!(reborn.recommend(id).unwrap(), before);
//!
//! // Fold history into checkpoints; the compacted log replays the same.
//! reborn.compact().unwrap();
//! assert_eq!(reborn.recommend(id).unwrap(), before);
//! # drop(reborn);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Fault injection & degraded mode
//!
//! The durable path is built to be *attacked*: [`DurabilityConfig`]
//! carries a [`FaultPlan`] (plain serde data) that injects a typed
//! `std::io::Error` at an exact `(site, hit)` coordinate of any IO site
//! in the path ([`FaultSite::ALL`] — append, group-commit flush, fsync,
//! segment rotation, compaction rewrite, generation marker, manifest).
//! Injection happens *before* the real IO, so no partial bytes ever
//! land, and the write-ahead contract holds at every site: the failing
//! operation rolls back and the store stays bit-for-bit replay-equal to
//! one that never saw the fault.  Failure is also product behaviour,
//! not an abort: a shard whose durable appends fail
//! `append_retry_budget` times in a row degrades to read-only —
//! mutating ops return [`CoreError::Degraded`](pkgrec_core::CoreError)
//! with the shard attribution, reads and stats keep serving, and a
//! successful [`SessionStore::sync`] re-arms it once the fault clears.
//! [`StoreStats`] counts `injected_faults`, `degraded_shards` and
//! `rolled_back_ops`; the adversarial harness in
//! `tests/tests/consistency_harness.rs` sweeps the full fault matrix
//! and fuzzes seeded concurrent schedules against single-threaded
//! replay.
//!
//! [`SessionStore::new`] still builds a memory-only store (tests,
//! simulations); [`SessionStore::from_journal`] adopts an exported
//! [`Journal`] wholesale.  To serve whole elicitation sessions
//! concurrently, pair each session with a
//! [`SimulatedUser`](pkgrec_core::SimulatedUser) and hand the batch to
//! [`ServingLoop::run`]; the `serving` example kills and recovers a
//! 100-session fleet this way, and the `fig_serving` bench measures the
//! interning + compaction byte cut and recovery time.
//!
//! To reach a store over the network instead of in-process, see the
//! `pkgrec-server` crate: it fronts a `SessionStore` with a CRC-framed TCP
//! wire protocol and routes requests to per-shard worker threads through
//! the same [`SessionStore::shards_mut`] ownership seam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod durable;
pub mod fault;
pub mod journal;
pub mod scoring;
pub mod segment;
pub mod serving;
pub mod store;

pub use config::{
    catalog_fingerprint, op_rng, shard_of, user_rng, LiveSession, RecommenderSpec, SessionConfig,
    SessionId,
};
pub use durable::DurabilityConfig;
pub use fault::{FaultKind, FaultPlan, FaultSite, PlannedFault};
pub use journal::{Journal, JournalRecord, ReplayedSession, SessionEvent};
pub use scoring::{
    AdmissionMode, AdmissionPolicy, PolicySnapshot, ScoringConfig, ScoringService, ScoringWorker,
    Submission, Verdict, VerdictOutcome,
};
pub use segment::{CatalogId, WireEvent, WireRecord};
pub use serving::{ServingLoop, SessionDriver, SessionOutcome};
pub use store::{
    CommittedPresent, CompactionStats, PendingPresent, SessionStore, Shard, StoreConfig, StoreStats,
};
