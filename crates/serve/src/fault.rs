//! Deterministic fault injection for the durable path.
//!
//! A [`FaultPlan`] is plain serde data carried by
//! [`DurabilityConfig`](crate::DurabilityConfig): a list of
//! [`PlannedFault`]s, each naming an IO *site* in the durable path
//! ([`FaultSite`]), the hit index at which it starts firing, how many
//! consecutive hits it poisons, and the [`std::io::ErrorKind`] class the
//! injected error carries ([`FaultKind`]).  Every `ShardLog` consults
//! its injector *before* performing the real IO at each site, so an
//! injected failure is always clean — no partial bytes reach the
//! filesystem — and a test can place a failure at an exact `(site, hit)`
//! coordinate and then prove the store rolled the operation back to a
//! state bit-for-bit replay-equal to a shadow store that never saw the
//! fault.
//!
//! Hit counters are per shard (each shard builds its injector from the
//! same plan), except [`FaultSite::Manifest`], whose counter lives in the
//! store-level injector used while opening or resharding.

use serde::{Deserialize, Serialize};

/// An IO site in the durable path where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// A single event append (before it is encoded into the write buffer).
    Append,
    /// A group-commit flush of the write buffer to the active segment.
    Flush,
    /// An explicit `sync` (`fsync` of the active segment).
    Sync,
    /// Sealing a full segment and opening the next one (rotation; the
    /// very first segment of a generation also opens through this site).
    Rotate,
    /// A compaction rewrite (building the next generation).
    Rewrite,
    /// Committing a `gen-<g>.ok` generation marker.
    Marker,
    /// Writing the `store.json` manifest (store-level open/reshard).
    Manifest,
}

impl FaultSite {
    /// All sites, for building a one-fault-per-site matrix.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::Append,
        FaultSite::Flush,
        FaultSite::Sync,
        FaultSite::Rotate,
        FaultSite::Rewrite,
        FaultSite::Marker,
        FaultSite::Manifest,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::Append => 0,
            FaultSite::Flush => 1,
            FaultSite::Sync => 2,
            FaultSite::Rotate => 3,
            FaultSite::Rewrite => 4,
            FaultSite::Marker => 5,
            FaultSite::Manifest => 6,
        }
    }
}

/// The error class an injected fault carries, mirroring the stable
/// [`std::io::ErrorKind`]s a real disk produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// `ErrorKind::StorageFull` — the disk ran out of space.
    StorageFull,
    /// `ErrorKind::PermissionDenied` — the file became unwritable.
    PermissionDenied,
    /// `ErrorKind::Interrupted` — a transient signal-interrupted write.
    Interrupted,
    /// `ErrorKind::WriteZero` — the device accepted none of the bytes.
    WriteZero,
    /// `ErrorKind::Other` — an unclassified failure.
    Other,
}

impl FaultKind {
    /// The `std::io::ErrorKind` this fault class injects.
    pub fn error_kind(self) -> std::io::ErrorKind {
        match self {
            FaultKind::StorageFull => std::io::ErrorKind::StorageFull,
            FaultKind::PermissionDenied => std::io::ErrorKind::PermissionDenied,
            FaultKind::Interrupted => std::io::ErrorKind::Interrupted,
            FaultKind::WriteZero => std::io::ErrorKind::WriteZero,
            FaultKind::Other => std::io::ErrorKind::Other,
        }
    }
}

/// One planned failure: fire at a `(site, hit-count)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// The IO site to poison.
    pub site: FaultSite,
    /// Zero-based hit index at which the fault starts firing (0 = the
    /// first time the site is reached).
    pub after: u64,
    /// How many consecutive hits fail once firing starts (`u64::MAX` for
    /// a persistent fault that never clears).
    pub count: u64,
    /// The error class the injected failure carries.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected IO failures (plain serde data).
///
/// The empty plan (the [`Default`]) injects nothing and costs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The planned failures; multiple faults may target the same site.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan injecting one failure: the `after`-th hit of `site` fails
    /// once with `kind`, and every later hit succeeds.
    pub fn once(site: FaultSite, after: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::default().and(PlannedFault {
            site,
            after,
            count: 1,
            kind,
        })
    }

    /// A plan injecting a persistent failure: every hit of `site` from
    /// `after` onwards fails with `kind` until the process restarts the
    /// store with a different plan.
    pub fn persistent(site: FaultSite, after: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::default().and(PlannedFault {
            site,
            after,
            count: u64::MAX,
            kind,
        })
    }

    /// Adds one more planned fault (builder-style).
    pub fn and(mut self, fault: PlannedFault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Runtime state of a [`FaultPlan`]: per-site hit counters plus the count
/// of faults actually injected (surfaced as
/// [`StoreStats::injected_faults`](crate::StoreStats::injected_faults)).
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    hits: [u64; FaultSite::ALL.len()],
    injected: u64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            hits: [0; FaultSite::ALL.len()],
            injected: 0,
        }
    }

    /// Consumes one hit of `site`; returns the injected error if the plan
    /// poisons this hit.  Called *before* the real IO, so an injected
    /// failure never leaves partial bytes behind.
    pub(crate) fn check(&mut self, site: FaultSite) -> std::result::Result<(), std::io::Error> {
        let hit = self.hits[site.index()];
        self.hits[site.index()] += 1;
        for fault in &self.plan.faults {
            if fault.site == site && hit >= fault.after && hit - fault.after < fault.count {
                self.injected += 1;
                return Err(std::io::Error::new(
                    fault.kind.error_kind(),
                    format!("injected {:?} fault at {site:?} hit {hit}", fault.kind),
                ));
            }
        }
        Ok(())
    }

    /// Faults injected so far.
    pub(crate) fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut injector = FaultInjector::new(FaultPlan::none());
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(injector.check(site).is_ok());
            }
        }
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn once_fires_at_exactly_the_requested_hit() {
        let mut injector =
            FaultInjector::new(FaultPlan::once(FaultSite::Flush, 2, FaultKind::StorageFull));
        assert!(injector.check(FaultSite::Flush).is_ok());
        assert!(injector.check(FaultSite::Flush).is_ok());
        let err = injector.check(FaultSite::Flush).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(injector.check(FaultSite::Flush).is_ok(), "fires once only");
        // Other sites are untouched.
        assert!(injector.check(FaultSite::Append).is_ok());
        assert_eq!(injector.injected(), 1);
    }

    #[test]
    fn persistent_faults_never_clear() {
        let mut injector = FaultInjector::new(FaultPlan::persistent(
            FaultSite::Sync,
            1,
            FaultKind::PermissionDenied,
        ));
        assert!(injector.check(FaultSite::Sync).is_ok());
        for _ in 0..50 {
            let err = injector.check(FaultSite::Sync).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        }
        assert_eq!(injector.injected(), 50);
    }

    #[test]
    fn plans_are_plain_serde_data() {
        let plan =
            FaultPlan::once(FaultSite::Marker, 3, FaultKind::Interrupted).and(PlannedFault {
                site: FaultSite::Append,
                after: 0,
                count: 2,
                kind: FaultKind::WriteZero,
            });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
