//! Journal wire format v2: the on-disk segment codec.
//!
//! A *segment* is one append-only file of the durable journal.  Its layout:
//!
//! ```text
//! ┌──────────────────────────┐
//! │ magic  "PKGJRNL\0"  (8B) │   segment header (12 bytes)
//! │ version u32 LE      (4B) │
//! ├──────────────────────────┤
//! │ len  u32 LE         (4B) │ ┐
//! │ crc32(payload) LE   (4B) │ │  one framed record, repeated
//! │ payload (JSON, len B)    │ ┘
//! ├──────────────────────────┤
//! │ ...                      │
//! └──────────────────────────┘
//! ```
//!
//! Each payload is one [`WireRecord`] serialised through the vendored
//! `serde_json` byte surface.  The CRC32 (IEEE) framing lets recovery detect
//! a *torn tail* — a record that was mid-write when the process died — and
//! truncate the segment back to its last clean record instead of refusing to
//! open the store ([`decode_segment`] reports the clean prefix length).
//!
//! ## Interning (why v2 exists)
//!
//! Format v1 (the in-memory [`Journal`](crate::journal::Journal)'s derived
//! serde form) embeds a full catalog copy in every `Created` event and every
//! `Snapshot` checkpoint, so journal bytes grow O(sessions × catalog).  v2
//! serialises each distinct catalog exactly once as a
//! [`WireRecord::Catalog`] definition; [`WireEvent::Created`] references it
//! by [`CatalogId`], and [`WireEvent::Snapshot`] carries the snapshot JSON
//! as a value tree whose `"catalog"` field is replaced by the id.  A
//! definition always precedes its first use in segment order, so a single
//! forward pass over the segments resolves every reference.

use crate::config::{RecommenderSpec, SessionId};
use pkgrec_core::{Catalog, Feedback, Package, Profile};
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"PKGJRNL\0";

/// Wire-format version this codec reads and writes.
pub const SEGMENT_VERSION: u32 = 2;

/// Bytes of the segment header (magic + version).
pub const SEGMENT_HEADER_LEN: usize = SEGMENT_MAGIC.len() + 4;

/// Bytes of one record frame's prefix (length + checksum).
pub const FRAME_PREFIX_LEN: usize = 8;

/// Identifies one interned catalog within a shard's durable journal.
///
/// Ids are assigned densely in first-use order by the shard's intern table;
/// they are meaningful only within the segment generation that wrote them
/// (compaction rewrites reassign ids from zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CatalogId(pub u64);

/// A journal event in wire form: catalogs appear as [`CatalogId`]
/// references instead of inline copies.
///
/// The non-catalog fields of `Created` mirror
/// [`SessionConfig`](crate::SessionConfig) field for field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireEvent {
    /// The session was created — the interned form of
    /// [`SessionEvent::Created`](crate::journal::SessionEvent::Created).
    Created {
        /// Reference to the session's interned catalog.
        catalog: CatalogId,
        /// The aggregate feature profile.
        profile: Profile,
        /// The maximum package size φ.
        max_package_size: usize,
        /// The recommender recipe.
        spec: RecommenderSpec,
        /// The deterministic session seed.
        seed: u64,
    },
    /// A present operation ran.
    Presented,
    /// User feedback was applied.
    Feedback(Feedback),
    /// A final recommendation was computed.
    Recommended,
    /// A spill checkpoint: the snapshot JSON as a parsed value tree whose
    /// `"catalog"` field holds the interned id as a JSON number (restored to
    /// the full catalog object on decode, reproducing the original snapshot
    /// string byte for byte).
    Snapshot {
        /// The snapshot value tree with the catalog field interned away.
        snapshot: Value,
        /// Operations applied when the checkpoint was taken.
        ops: u64,
        /// The packages shown by the latest present, for replay fidelity.
        last_shown: Vec<Package>,
    },
}

/// One framed record in a segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRecord {
    /// An intern-table definition: the one place this catalog's bytes live.
    Catalog {
        /// The id subsequent references use.
        id: CatalogId,
        /// The catalog itself.
        catalog: Catalog,
    },
    /// A session event.
    Event {
        /// The session the event belongs to.
        session: SessionId,
        /// The event in wire form.
        event: WireEvent,
    },
}

/// CRC32 (IEEE, reflected, polynomial `0xEDB88320`) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The CRC32 (IEEE) checksum of `bytes`, as used by the record framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends the 12-byte segment header (magic + version) to `out`.
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
}

/// Appends one framed record (`len | crc | payload`) to `out`.
pub fn encode_record(record: &WireRecord, out: &mut Vec<u8>) -> pkgrec_core::Result<()> {
    let payload = serde_json::to_vec(record)
        .map_err(|e| pkgrec_core::CoreError::io_data(format!("record serialisation: {e}")))?;
    let len = u32::try_from(payload.len()).map_err(|_| {
        pkgrec_core::CoreError::io_data(format!(
            "record payload of {} bytes overflows the frame",
            payload.len()
        ))
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(())
}

/// The result of decoding one segment's bytes.
#[derive(Debug)]
pub struct DecodedSegment {
    /// The records of the clean prefix, in append order.
    pub records: Vec<WireRecord>,
    /// Byte length of the clean prefix (header plus whole, checksummed
    /// records).  Truncating the file to this length removes the torn tail.
    pub clean_len: u64,
    /// Why decoding stopped before the end of the input, if it did.  `None`
    /// means the segment is clean.
    pub torn: Option<String>,
}

/// Decodes a segment byte-for-byte, stopping at the first torn or corrupt
/// record.
///
/// Torn tails are *reported*, not errored: whether a torn record is
/// tolerable depends on position (recovery accepts it only on the newest
/// segment of the newest generation — anywhere else it is corruption, and
/// the caller escalates).  The only hard error is a well-formed header
/// declaring a version this codec does not speak.
pub fn decode_segment(bytes: &[u8]) -> pkgrec_core::Result<DecodedSegment> {
    if bytes.len() < SEGMENT_HEADER_LEN || bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Ok(DecodedSegment {
            records: Vec::new(),
            clean_len: 0,
            torn: Some("missing or torn segment header".into()),
        });
    }
    let version = u32::from_le_bytes(
        bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER_LEN]
            .try_into()
            .expect("slice is 4 bytes"),
    );
    if version != SEGMENT_VERSION {
        return Err(pkgrec_core::CoreError::io_data(format!(
            "segment declares wire version {version}, this build speaks {SEGMENT_VERSION}"
        )));
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    let mut torn = None;
    while offset < bytes.len() {
        if bytes.len() - offset < FRAME_PREFIX_LEN {
            torn = Some("torn frame prefix".into());
            break;
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let start = offset + FRAME_PREFIX_LEN;
        if bytes.len() - start < len {
            torn = Some(format!(
                "torn record payload: frame declares {len} bytes, {} remain",
                bytes.len() - start
            ));
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            torn = Some("record checksum mismatch".into());
            break;
        }
        match serde_json::from_slice::<WireRecord>(payload) {
            Ok(record) => records.push(record),
            Err(e) => {
                torn = Some(format!("checksummed record failed to parse: {e}"));
                break;
            }
        }
        offset = start + len;
    }
    Ok(DecodedSegment {
        records,
        clean_len: offset as u64,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::EngineConfig;

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![vec![0.6, 0.2], vec![0.4, 0.4], vec![0.9, 0.8]]).unwrap()
    }

    fn sample_records() -> Vec<WireRecord> {
        let snapshot_obj = Value::Object(vec![
            ("version".into(), Value::Int(1)),
            ("catalog".into(), Value::Int(0)),
            ("rounds".into(), Value::Int(2)),
        ]);
        vec![
            WireRecord::Catalog {
                id: CatalogId(0),
                catalog: catalog(),
            },
            WireRecord::Event {
                session: SessionId(1),
                event: WireEvent::Created {
                    catalog: CatalogId(0),
                    profile: Profile::cost_quality(),
                    max_package_size: 2,
                    spec: RecommenderSpec::Engine(EngineConfig::default()),
                    seed: 7,
                },
            },
            WireRecord::Event {
                session: SessionId(1),
                event: WireEvent::Presented,
            },
            WireRecord::Event {
                session: SessionId(1),
                event: WireEvent::Feedback(Feedback::Click { index: 1 }),
            },
            WireRecord::Event {
                session: SessionId(1),
                event: WireEvent::Snapshot {
                    snapshot: snapshot_obj,
                    ops: 2,
                    last_shown: vec![Package::new(vec![1]).unwrap()],
                },
            },
            WireRecord::Event {
                session: SessionId(1),
                event: WireEvent::Recommended,
            },
        ]
    }

    fn encode_all(records: &[WireRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(&mut out);
        for record in records {
            encode_record(record, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for the standard 9-byte test string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_a_segment() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let decoded = decode_segment(&bytes).unwrap();
        assert_eq!(decoded.records, records);
        assert_eq!(decoded.clean_len, bytes.len() as u64);
        assert!(decoded.torn.is_none());
    }

    #[test]
    fn truncation_at_every_offset_yields_a_clean_prefix() {
        let records = sample_records();
        let bytes = encode_all(&records);
        for cut in 0..bytes.len() {
            let decoded = decode_segment(&bytes[..cut]).unwrap();
            // The clean prefix re-decodes with no torn tail and the same
            // records — exactly what truncate-at-corruption relies on.
            assert!(decoded.clean_len <= cut as u64);
            let reread = decode_segment(&bytes[..decoded.clean_len as usize]).unwrap();
            assert_eq!(reread.records, decoded.records);
            if decoded.clean_len >= SEGMENT_HEADER_LEN as u64 {
                assert!(reread.torn.is_none());
            }
            assert!(decoded.records.len() <= records.len());
            assert_eq!(decoded.records[..], records[..decoded.records.len()]);
            if cut < bytes.len() {
                assert!(decoded.torn.is_some() || decoded.clean_len == cut as u64);
            }
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let records = sample_records();
        let clean = encode_all(&records);
        // Flip a byte in the middle of the second record's payload.
        let mut corrupt = clean.clone();
        let target = SEGMENT_HEADER_LEN + FRAME_PREFIX_LEN + 40;
        corrupt[target] ^= 0x40;
        let decoded = decode_segment(&corrupt).unwrap();
        assert!(decoded.torn.is_some(), "corruption went undetected");
        assert!(decoded.records.len() < records.len());
    }

    #[test]
    fn unknown_version_is_a_hard_error_but_bad_magic_is_torn() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert!(decode_segment(&bytes).is_err());

        let garbage = b"not a segment at all";
        let decoded = decode_segment(garbage).unwrap();
        assert_eq!(decoded.clean_len, 0);
        assert!(decoded.torn.is_some());
        assert!(decoded.records.is_empty());
    }
}
