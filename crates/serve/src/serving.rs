//! The shard-parallel serving loop: many concurrent elicitation sessions.
//!
//! [`ServingLoop`] drives a batch of simulated users against the sessions of
//! a [`SessionStore`], shard-parallel with [`std::thread::scope`]: each
//! worker thread takes `&mut` ownership of a contiguous chunk of shards and
//! runs every session that hashes to them, so no lock is ever taken.  Each
//! session is driven through the *generic* elicitation driver
//! ([`run_elicitation`]) — the serving layer reuses the core loop rather
//! than duplicating it — via [`SessionDriver`], a [`Recommender`] adapter
//! that forwards every call to the journaled store operations.
//!
//! Per-session outcomes are thread-count-independent *and* shard-count-
//! independent: the driver ignores the caller's RNG in favour of the
//! session's own `(seed, ops)`-derived streams, the user RNG derives from
//! the session seed, and spill/rehydrate round trips are bit-identical, so
//! scheduling and capacity pressure cannot change what any session does.

use pkgrec_core::{
    run_elicitation, AggregatedSearchStats, Catalog, CoreError, ElicitationConfig, Feedback,
    Package, RankedPackage, Recommender, RecommenderState, Result, SimulatedUser,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::config::{shard_of, user_rng, SessionId};
use crate::scoring::{ScoringConfig, ScoringService, Verdict};
use crate::store::{PendingPresent, SessionStore, Shard};

/// A [`Recommender`] view of one stored session: every call becomes the
/// matching journaled shard operation (the caller's RNG is ignored — the
/// session's own deterministic per-operation streams are used instead, which
/// is what makes serving outcomes scheduling-independent).
pub struct SessionDriver<'a> {
    shard: &'a mut Shard,
    id: SessionId,
}

impl<'a> SessionDriver<'a> {
    /// Wraps a session of `shard`, rehydrating it so that read-only trait
    /// methods ([`Recommender::state`], [`Recommender::catalog`]) can serve
    /// from the live form.
    pub(crate) fn new(shard: &'a mut Shard, id: SessionId) -> Result<Self> {
        shard.ensure_live(id)?;
        Ok(SessionDriver { shard, id })
    }
}

impl Recommender for SessionDriver<'_> {
    fn catalog(&self) -> &Catalog {
        self.shard
            .session_config(self.id)
            .expect("driver sessions exist")
            .catalog
            .as_ref()
    }

    fn present(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<Package>> {
        self.shard.op_present(self.id)
    }

    fn record_feedback(
        &mut self,
        _shown: &[Package],
        feedback: Feedback,
        _rng: &mut dyn RngCore,
    ) -> Result<usize> {
        // The shard validates against the list its own `present` returned —
        // the same list the elicitation driver passes back.
        self.shard.op_feedback(self.id, feedback)
    }

    fn recommend(&mut self, _rng: &mut dyn RngCore) -> Result<Vec<RankedPackage>> {
        self.shard.op_recommend(self.id)
    }

    fn state(&self) -> RecommenderState {
        self.shard
            .peek_state(self.id)
            .expect("the driver keeps its session live")
    }
}

/// Outcome of serving one session to convergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The session served.
    pub id: SessionId,
    /// The recommender label ("engine", "em-refit", …).
    pub label: String,
    /// Clicks until convergence (or the round budget).
    pub clicks: usize,
    /// Whether the top-k list stabilised within the budget.
    pub converged: bool,
    /// Final precision against the user's hidden ground truth.
    pub precision: f64,
    /// `Top-k-Pkg` statistics the session accumulated while being served.
    pub search: AggregatedSearchStats,
}

/// The shard-parallel session driver (see the module docs).
pub struct ServingLoop<'a> {
    store: &'a mut SessionStore,
}

impl<'a> ServingLoop<'a> {
    /// Wraps a store for serving.
    pub fn new(store: &'a mut SessionStore) -> Self {
        ServingLoop { store }
    }

    /// Serves every `(session, user)` pair to convergence and returns the
    /// outcomes ordered by session id.
    ///
    /// `threads` caps the worker count (clamped to the shard count; shards
    /// are the parallelism grain).  The per-session outcomes are identical
    /// for every `threads` value and every shard count — proven by the
    /// `serving_store` integration suite.
    pub fn run(
        &mut self,
        sessions: &[(SessionId, SimulatedUser)],
        elicitation: ElicitationConfig,
        threads: usize,
    ) -> Result<Vec<SessionOutcome>> {
        self.run_with(sessions, elicitation, threads, false)
    }

    /// [`ServingLoop::run`] with each shard's sessions driven in *lockstep*:
    /// every round presents the shard's still-active sessions through one
    /// [`Shard::op_present_batch`] call, so same-catalog engine sessions
    /// share a single batched kernel sweep per round instead of one each.
    ///
    /// Outcomes are identical to [`ServingLoop::run`]: every session draws
    /// from its own `(seed, ops)` operation streams and its own user RNG, so
    /// interleaving rounds across sessions cannot change what any session
    /// sees — the `serving_store` suite and `fig_serving` assert the
    /// equality.
    pub fn run_batched(
        &mut self,
        sessions: &[(SessionId, SimulatedUser)],
        elicitation: ElicitationConfig,
        threads: usize,
    ) -> Result<Vec<SessionOutcome>> {
        self.run_with(sessions, elicitation, threads, true)
    }

    /// [`ServingLoop::run_batched`] with every round's batchable `present`
    /// work routed through a shared cross-shard [`ScoringService`]: each
    /// worker prepares its shards' still-active sessions, submits the
    /// pending work to the fleet-wide batcher, and commits the routed
    /// verdicts — so same-catalog sessions on *different* shards (and
    /// different worker threads) share one stacked kernel sweep per round.
    ///
    /// The service's [`AdmissionPolicy`](crate::scoring::AdmissionPolicy)
    /// decides per group whether batching is worth it; declined or
    /// unbatchable sessions fall back to serial scoring with identical
    /// results.  Outcomes are bit-identical to [`ServingLoop::run`] and
    /// [`ServingLoop::run_batched`] for every thread count: journaling,
    /// `(seed, ops)` RNG streams and rollback stay per-shard, and the
    /// stacked sweep computes the same score cells a per-session sweep
    /// would.
    pub fn run_scored(
        &mut self,
        sessions: &[(SessionId, SimulatedUser)],
        elicitation: ElicitationConfig,
        threads: usize,
        scoring: &ScoringConfig,
    ) -> Result<Vec<SessionOutcome>> {
        validate_lockstep(elicitation)?;
        let shard_count = self.store.shard_count();
        let mut groups: Vec<Vec<(SessionId, &SimulatedUser)>> = vec![Vec::new(); shard_count];
        for (id, user) in sessions {
            groups[shard_of(*id, shard_count)].push((*id, user));
        }
        let threads = threads.clamp(1, shard_count);
        let chunk = shard_count.div_ceil(threads);
        let workers = shard_count.div_ceil(chunk);
        let service = ScoringService::with_workers(scoring.clone(), workers);
        let shards = self.store.shards_mut();

        let mut outcomes: Vec<SessionOutcome> = if workers <= 1 {
            let mut all = Vec::with_capacity(sessions.len());
            serve_chunk_scored(shards, &groups, elicitation, &service, &mut all)?;
            all
        } else {
            let chunks: Vec<Result<Vec<SessionOutcome>>> = std::thread::scope(|scope| {
                let service = &service;
                let handles: Vec<_> = shards
                    .chunks_mut(chunk)
                    .zip(groups.chunks(chunk))
                    .map(|(shard_chunk, group_chunk)| {
                        scope.spawn(move || -> Result<Vec<SessionOutcome>> {
                            let mut chunk_outcomes = Vec::new();
                            serve_chunk_scored(
                                shard_chunk,
                                group_chunk,
                                elicitation,
                                service,
                                &mut chunk_outcomes,
                            )?;
                            Ok(chunk_outcomes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serving thread does not panic"))
                    .collect()
            });
            let mut all = Vec::with_capacity(sessions.len());
            for chunk_result in chunks {
                all.extend(chunk_result?);
            }
            all
        };
        outcomes.sort_unstable_by_key(|o| o.id);
        Ok(outcomes)
    }

    fn run_with(
        &mut self,
        sessions: &[(SessionId, SimulatedUser)],
        elicitation: ElicitationConfig,
        threads: usize,
        batched: bool,
    ) -> Result<Vec<SessionOutcome>> {
        let serve: ShardServeFn = if batched {
            serve_shard_batched
        } else {
            serve_shard
        };
        let shard_count = self.store.shard_count();
        let mut groups: Vec<Vec<(SessionId, &SimulatedUser)>> = vec![Vec::new(); shard_count];
        for (id, user) in sessions {
            groups[shard_of(*id, shard_count)].push((*id, user));
        }
        let threads = threads.clamp(1, shard_count);
        let chunk = shard_count.div_ceil(threads);
        let shards = self.store.shards_mut();

        let mut outcomes: Vec<SessionOutcome> = if threads <= 1 {
            let mut all = Vec::with_capacity(sessions.len());
            for (shard, group) in shards.iter_mut().zip(groups.iter()) {
                serve(shard, group, elicitation, &mut all)?;
            }
            all
        } else {
            let chunks: Vec<Result<Vec<SessionOutcome>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .chunks_mut(chunk)
                    .zip(groups.chunks(chunk))
                    .map(|(shard_chunk, group_chunk)| {
                        scope.spawn(move || -> Result<Vec<SessionOutcome>> {
                            let mut chunk_outcomes = Vec::new();
                            for (shard, group) in shard_chunk.iter_mut().zip(group_chunk.iter()) {
                                serve(shard, group, elicitation, &mut chunk_outcomes)?;
                            }
                            Ok(chunk_outcomes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serving thread does not panic"))
                    .collect()
            });
            let mut all = Vec::with_capacity(sessions.len());
            for chunk_result in chunks {
                all.extend(chunk_result?);
            }
            all
        };
        outcomes.sort_unstable_by_key(|o| o.id);
        Ok(outcomes)
    }
}

/// The per-shard serving body [`ServingLoop::run_with`] dispatches on:
/// session-at-a-time ([`serve_shard`]) or lockstep batched
/// ([`serve_shard_batched`]).
type ShardServeFn = fn(
    &mut Shard,
    &[(SessionId, &SimulatedUser)],
    ElicitationConfig,
    &mut Vec<SessionOutcome>,
) -> Result<()>;

/// Serves one shard's sessions sequentially (the per-thread body).
fn serve_shard(
    shard: &mut Shard,
    group: &[(SessionId, &SimulatedUser)],
    elicitation: ElicitationConfig,
    outcomes: &mut Vec<SessionOutcome>,
) -> Result<()> {
    for &(id, user) in group {
        let seed = shard.session_config(id)?.seed;
        let mut driver = SessionDriver::new(shard, id)?;
        let label = driver.state().label.clone();
        let mut rng = user_rng(seed);
        let report = run_elicitation(&mut driver, user, elicitation, &mut rng)?;
        outcomes.push(SessionOutcome {
            id,
            label,
            clicks: report.clicks,
            converged: report.converged,
            precision: report.precision,
            search: report.search,
        });
    }
    Ok(())
}

/// Serves one shard's sessions in lockstep rounds (the batched per-thread
/// body): each round presents every still-active session through one
/// [`Shard::op_present_batch`] call, then mirrors the generic elicitation
/// driver's convergence/feedback step per session.  The control flow is an
/// exact transcript of [`run_elicitation`] — each session observes the same
/// sequence of store operations and user-RNG draws it would serially, so the
/// outcomes are identical; only the interleaving (and hence the kernel batch
/// shape) changes.
fn serve_shard_batched(
    shard: &mut Shard,
    group: &[(SessionId, &SimulatedUser)],
    elicitation: ElicitationConfig,
    outcomes: &mut Vec<SessionOutcome>,
) -> Result<()> {
    validate_lockstep(elicitation)?;
    let mut states = lockstep_states(shard, group)?;

    for _ in 0..elicitation.max_rounds {
        let active: Vec<usize> = (0..states.len()).filter(|&i| !states[i].done).collect();
        if active.is_empty() {
            break;
        }
        let ids: Vec<SessionId> = active.iter().map(|&i| states[i].id).collect();
        let shown_lists = shard.op_present_batch(&ids)?;
        for (&i, shown) in active.iter().zip(shown_lists) {
            round_step(shard, &mut states[i], shown, elicitation)?;
        }
    }

    finalize_lockstep(shard, states, outcomes)
}

/// Per-session elicitation state, exactly the locals of
/// [`run_elicitation`] plus a `done` flag for the lockstep scheduler.
struct Lockstep<'u> {
    id: SessionId,
    user: &'u SimulatedUser,
    catalog: std::sync::Arc<Catalog>,
    label: String,
    k: usize,
    start_search: AggregatedSearchStats,
    ground_truth: Vec<Package>,
    rng: rand::rngs::StdRng,
    previous: Option<Vec<Package>>,
    stable: usize,
    clicks: usize,
    converged: bool,
    last_recommendation: Vec<Package>,
    done: bool,
}

fn validate_lockstep(elicitation: ElicitationConfig) -> Result<()> {
    if elicitation.max_rounds == 0 || elicitation.stable_rounds == 0 {
        return Err(CoreError::InvalidConfig(
            "max_rounds and stable_rounds must be at least 1".into(),
        ));
    }
    Ok(())
}

/// Builds the lockstep state for every session of one shard group.
fn lockstep_states<'u>(
    shard: &mut Shard,
    group: &[(SessionId, &'u SimulatedUser)],
) -> Result<Vec<Lockstep<'u>>> {
    let mut states: Vec<Lockstep> = Vec::with_capacity(group.len());
    for &(id, user) in group {
        let config = shard.session_config(id)?;
        let seed = config.seed;
        let catalog = std::sync::Arc::clone(&config.catalog);
        shard.ensure_live(id)?;
        let state = shard.peek_state(id).expect("session was just made live");
        let ground_truth = user.ground_truth_top_k(&catalog, state.k)?.into_packages();
        states.push(Lockstep {
            id,
            user,
            catalog,
            label: state.label.clone(),
            k: state.k,
            start_search: state.search,
            ground_truth,
            rng: user_rng(seed),
            previous: None,
            stable: 0,
            clicks: 0,
            converged: false,
            last_recommendation: Vec::new(),
            done: false,
        });
    }
    Ok(states)
}

/// One session's convergence/feedback step after its round's `present`
/// returned `shown` — an exact transcript of the [`run_elicitation`] round
/// body.  A converged session takes no feedback (the convergence check is on
/// the recommended exploitation part only), mirroring the serial driver's
/// `break`.
fn round_step(
    shard: &mut Shard,
    s: &mut Lockstep,
    shown: Vec<Package>,
    elicitation: ElicitationConfig,
) -> Result<()> {
    s.last_recommendation = shown.iter().take(s.k).cloned().collect();
    if s.previous.as_ref() == Some(&s.last_recommendation) {
        s.stable += 1;
        if s.stable + 1 >= elicitation.stable_rounds {
            s.converged = true;
            s.done = true;
            return Ok(());
        }
    } else {
        s.stable = 0;
    }
    s.previous = Some(s.last_recommendation.clone());

    let choice = s.user.choose(&s.catalog, &shown, &mut s.rng)?;
    shard.op_feedback(s.id, Feedback::Click { index: choice })?;
    s.clicks += 1;
    Ok(())
}

/// Converts finished lockstep states into [`SessionOutcome`]s.
fn finalize_lockstep(
    shard: &mut Shard,
    states: Vec<Lockstep>,
    outcomes: &mut Vec<SessionOutcome>,
) -> Result<()> {
    for s in states {
        let hits = s
            .last_recommendation
            .iter()
            .filter(|p| s.ground_truth.contains(p))
            .count();
        let precision = if s.last_recommendation.is_empty() {
            0.0
        } else {
            hits as f64 / s.last_recommendation.len() as f64
        };
        shard.ensure_live(s.id)?;
        let end = shard.peek_state(s.id).expect("session was just made live");
        outcomes.push(SessionOutcome {
            id: s.id,
            label: s.label,
            clicks: s.clicks,
            converged: s.converged,
            precision,
            search: end.search.delta_since(&s.start_search),
        });
    }
    Ok(())
}

/// The per-round body of [`serve_chunk_scored`]: every still-active session
/// of every shard in the chunk is prepared, submitted to the shared
/// [`ScoringService`] in one call, committed (batched pendings first — see
/// [`Shard::commit_present`]), and stepped through feedback/convergence.
///
/// Returns `false` once no session in the chunk is still active.
fn scored_round(
    shards: &mut [Shard],
    states: &mut [Vec<Lockstep>],
    worker: &crate::scoring::ScoringWorker,
    service: &ScoringService,
    elicitation: ElicitationConfig,
) -> Result<bool> {
    // Prepare: per shard, every still-active session.  `PendingPresent`s are
    // Option-wrapped so the two commit passes below can `take()` them
    // positionally.
    struct ShardRound {
        shard: usize,
        active: Vec<usize>,
        pendings: Vec<Option<PendingPresent>>,
    }
    let mut round: Vec<ShardRound> = Vec::new();
    for (si, shard_states) in states.iter().enumerate() {
        let active: Vec<usize> = (0..shard_states.len())
            .filter(|&i| !shard_states[i].done)
            .collect();
        if active.is_empty() {
            continue;
        }
        let ids: Vec<SessionId> = active.iter().map(|&i| shard_states[i].id).collect();
        match shards[si].prepare_presents(&ids) {
            Ok(pendings) => round.push(ShardRound {
                shard: si,
                active,
                pendings: pendings.into_iter().map(Some).collect(),
            }),
            Err(e) => {
                // Abandon the pendings already prepared on earlier shards so
                // their live state stays in sync with the journal.
                for r in round {
                    shards[r.shard].abort_presents(r.pendings.into_iter().flatten().collect());
                }
                return Err(e);
            }
        }
    }
    if round.is_empty() {
        return Ok(false);
    }

    // Submit the whole chunk's batchable work in one rendezvous (an empty
    // submission still checks in, so sibling workers never wait a full
    // window on this worker's account).
    let mut submissions = Vec::new();
    let mut routes: Vec<(usize, usize)> = Vec::new();
    for (ri, r) in round.iter_mut().enumerate() {
        for (pi, pending) in r.pendings.iter_mut().enumerate() {
            if let Some(sub) = pending.as_mut().and_then(|p| p.take_submission()) {
                submissions.push(sub);
                routes.push((ri, pi));
            }
        }
    }
    let (verdicts, wait) = worker.submit(submissions);
    if let Some(&(ri, _)) = routes.first() {
        shards[round[ri].shard].note_batch_wait(wait);
    }
    let mut slots: Vec<Vec<Option<Verdict>>> = round
        .iter()
        .map(|r| r.pendings.iter().map(|_| None).collect())
        .collect();
    for (&(ri, pi), verdict) in routes.iter().zip(verdicts) {
        slots[ri][pi] = Some(verdict);
    }

    // Commit batched pendings before serial ones (see `commit_present`); each
    // commit is self-contained, so on failure the rest of the round still
    // commits and the first error is reported.
    let mut shown_lists: Vec<Vec<Option<Vec<Package>>>> = round
        .iter()
        .map(|r| r.pendings.iter().map(|_| None).collect())
        .collect();
    let mut first_error: Option<CoreError> = None;
    for batched_pass in [true, false] {
        for (ri, r) in round.iter_mut().enumerate() {
            for pi in 0..r.pendings.len() {
                let matches_pass = r.pendings[pi]
                    .as_ref()
                    .is_some_and(|p| p.is_batched() == batched_pass);
                if !matches_pass {
                    continue;
                }
                let pending = r.pendings[pi].take().expect("pending matched this pass");
                let verdict = slots[ri][pi].take();
                match shards[r.shard].commit_present(pending, verdict) {
                    Ok(committed) => {
                        if let Some(cost) = committed.fallback_cost {
                            service.observe_serial(1, cost);
                        }
                        shown_lists[ri][pi] = Some(committed.shown);
                    }
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }

    // Feedback/convergence, in the same per-shard session order as the
    // non-scored lockstep body.
    for (ri, r) in round.iter().enumerate() {
        for (pi, &state_idx) in r.active.iter().enumerate() {
            let shown = shown_lists[ri][pi].take().expect("every commit succeeded");
            round_step(
                &mut shards[r.shard],
                &mut states[r.shard][state_idx],
                shown,
                elicitation,
            )?;
        }
    }
    Ok(true)
}

/// The per-worker body of [`ServingLoop::run_scored`]: drives a chunk of
/// shards in lockstep rounds, routing every round's batchable `present` work
/// through the shared [`ScoringService`] so same-catalog sessions group into
/// one kernel sweep *across* shard (and worker) boundaries.
fn serve_chunk_scored(
    shards: &mut [Shard],
    groups: &[Vec<(SessionId, &SimulatedUser)>],
    elicitation: ElicitationConfig,
    service: &ScoringService,
    outcomes: &mut Vec<SessionOutcome>,
) -> Result<()> {
    // The worker handle registers this thread with the service's lockstep
    // rendezvous; dropping it (early error return included) departs, so
    // sibling workers never deadlock waiting for a dead peer.
    let worker = service.worker();
    let mut states: Vec<Vec<Lockstep>> = Vec::with_capacity(shards.len());
    for (shard, group) in shards.iter_mut().zip(groups.iter()) {
        states.push(lockstep_states(shard, group)?);
    }

    for _ in 0..elicitation.max_rounds {
        if !scored_round(shards, &mut states, &worker, service, elicitation)? {
            break;
        }
    }
    // Depart before finalising so sibling workers stop waiting for this
    // chunk's round check-ins immediately.
    drop(worker);

    for (shard, shard_states) in shards.iter_mut().zip(states) {
        finalize_lockstep(shard, shard_states, outcomes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RecommenderSpec, SessionConfig};
    use crate::scoring::AdmissionMode;
    use crate::store::StoreConfig;
    use pkgrec_core::{
        AggregationContext, Catalog, EngineConfig, LinearUtility, Profile, RankingSemantics,
    };

    fn catalog() -> Catalog {
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
            vec![0.7, 0.1],
            vec![0.1, 0.3],
            vec![0.5, 0.9],
        ])
        .unwrap()
    }

    fn session(seed: u64) -> SessionConfig {
        SessionConfig {
            catalog: std::sync::Arc::new(catalog()),
            profile: Profile::cost_quality(),
            max_package_size: 2,
            spec: RecommenderSpec::Engine(EngineConfig {
                k: 2,
                num_random: 2,
                num_samples: 25,
                semantics: RankingSemantics::Exp,
                ..EngineConfig::default()
            }),
            seed,
        }
    }

    fn user(weights: Vec<f64>) -> SimulatedUser {
        let context = AggregationContext::new(Profile::cost_quality(), &catalog(), 2).unwrap();
        SimulatedUser::new(LinearUtility::new(context, weights).unwrap())
    }

    fn serve_with(
        shards: usize,
        capacity: usize,
        threads: usize,
        batched: bool,
    ) -> Vec<SessionOutcome> {
        let mut store = SessionStore::new(StoreConfig {
            shards,
            capacity_per_shard: capacity,
        })
        .unwrap();
        // One interned catalog across the fleet so the batched path actually
        // groups sessions into shared kernel sweeps.
        let catalog = std::sync::Arc::new(catalog());
        let mut sessions = Vec::new();
        for i in 0..6u64 {
            let mut config = session(100 + i);
            config.catalog = std::sync::Arc::clone(&catalog);
            let id = store.create(config).unwrap();
            let lean = if i % 2 == 0 { -0.8 } else { 0.5 };
            sessions.push((id, user(vec![lean, 0.6])));
        }
        let config = ElicitationConfig {
            max_rounds: 5,
            stable_rounds: 2,
        };
        let mut serving = ServingLoop::new(&mut store);
        let outcomes = if batched {
            serving.run_batched(&sessions, config, threads).unwrap()
        } else {
            serving.run(&sessions, config, threads).unwrap()
        };
        if batched && capacity >= sessions.len() {
            // At ample capacity every engine round goes through the batched
            // sweep rather than the serial fallback.
            assert!(store.stats().batched_presents > 0);
        }
        outcomes
    }

    fn serve(shards: usize, capacity: usize, threads: usize) -> Vec<SessionOutcome> {
        serve_with(shards, capacity, threads, false)
    }

    fn serve_scored(
        shards: usize,
        capacity: usize,
        threads: usize,
        scoring: ScoringConfig,
    ) -> (Vec<SessionOutcome>, crate::store::StoreStats) {
        let mut store = SessionStore::new(StoreConfig {
            shards,
            capacity_per_shard: capacity,
        })
        .unwrap();
        // The same fleet as `serve_with`, so outcomes are comparable across
        // all three drive modes.
        let catalog = std::sync::Arc::new(catalog());
        let mut sessions = Vec::new();
        for i in 0..6u64 {
            let mut config = session(100 + i);
            config.catalog = std::sync::Arc::clone(&catalog);
            let id = store.create(config).unwrap();
            let lean = if i % 2 == 0 { -0.8 } else { 0.5 };
            sessions.push((id, user(vec![lean, 0.6])));
        }
        let config = ElicitationConfig {
            max_rounds: 5,
            stable_rounds: 2,
        };
        let outcomes = ServingLoop::new(&mut store)
            .run_scored(&sessions, config, threads, &scoring)
            .unwrap();
        let stats = store.stats();
        (outcomes, stats)
    }

    #[test]
    fn outcomes_are_ordered_and_complete() {
        let outcomes = serve(2, 16, 1);
        assert_eq!(outcomes.len(), 6);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.id, SessionId(i as u64));
            assert_eq!(outcome.label, "engine");
            assert!(outcome.clicks >= 1);
            assert!(outcome.search.searches > 0);
        }
    }

    #[test]
    fn outcomes_are_independent_of_thread_count() {
        let single = serve(4, 16, 1);
        let multi = serve(4, 16, 4);
        assert_eq!(single, multi);
    }

    #[test]
    fn batched_serving_matches_serial_serving_exactly() {
        // At ample capacity nothing ever spills, so even the accumulated
        // search statistics must agree outcome-for-outcome.
        let serial = serve_with(2, 16, 1, false);
        let batched = serve_with(2, 16, 1, true);
        assert_eq!(serial, batched);
    }

    #[test]
    fn batched_outcomes_are_independent_of_thread_count() {
        let single = serve_with(4, 16, 1, true);
        let multi = serve_with(4, 16, 4, true);
        assert_eq!(single, multi);
    }

    #[test]
    fn batched_serving_survives_capacity_pressure() {
        // Capacity 1 forces the batched path into its serial fallback on
        // most rounds; session-visible outcomes must not notice.  (Search
        // deltas are excluded: spill resets the in-memory counters at
        // different moments under the two drive orders.)
        let ample = serve_with(2, 16, 2, true);
        let starved = serve_with(2, 1, 2, true);
        for (a, s) in ample.iter().zip(starved.iter()) {
            assert_eq!(a.id, s.id);
            assert_eq!(a.clicks, s.clicks);
            assert_eq!(a.converged, s.converged);
            assert_eq!(a.precision, s.precision);
        }
    }

    #[test]
    fn scored_serving_matches_serial_and_batched_serving_exactly() {
        // The cross-shard scoring service is a scheduling change only: at
        // ample capacity even the accumulated search statistics must agree
        // outcome-for-outcome with both other drive modes.
        let serial = serve_with(2, 16, 1, false);
        let batched = serve_with(2, 16, 1, true);
        let (scored, stats) = serve_scored(2, 16, 1, ScoringConfig::default());
        assert_eq!(serial, scored);
        assert_eq!(batched, scored);
        // One worker submits the whole fleet per round, so the shared
        // catalog groups across both shards into shared sweeps.
        assert!(stats.batched_sessions > 0);
        assert!(stats.batched_groups > 0);
        assert!(stats.batched_presents > 0);
    }

    #[test]
    fn scored_outcomes_are_independent_of_thread_count() {
        let (single, _) = serve_scored(4, 16, 1, ScoringConfig::default());
        let (multi, _) = serve_scored(4, 16, 4, ScoringConfig::default());
        assert_eq!(single, multi);
    }

    #[test]
    fn declined_admission_falls_back_without_changing_outcomes() {
        // `Never` forces every group through the serial fallback: outcomes
        // must not move, and the fallbacks must be accounted.
        let (adaptive, _) = serve_scored(4, 16, 4, ScoringConfig::default());
        let never = ScoringConfig {
            mode: AdmissionMode::Never,
            ..ScoringConfig::default()
        };
        let (declined, stats) = serve_scored(4, 16, 4, never);
        assert_eq!(adaptive, declined);
        assert!(stats.admission_fallbacks > 0);
        assert_eq!(stats.batched_sessions, 0);
        assert_eq!(stats.batched_groups, 0);
    }

    #[test]
    fn scored_serving_survives_capacity_pressure() {
        // Capacity 1 re-spills sessions between prepare rounds, forcing the
        // mixed batched-then-serial commit ordering inside every round;
        // session-visible outcomes must not notice.
        let (ample, _) = serve_scored(2, 16, 2, ScoringConfig::default());
        let (starved, _) = serve_scored(2, 1, 2, ScoringConfig::default());
        for (a, s) in ample.iter().zip(starved.iter()) {
            assert_eq!(a.id, s.id);
            assert_eq!(a.clicks, s.clicks);
            assert_eq!(a.converged, s.converged);
            assert_eq!(a.precision, s.precision);
        }
    }

    #[test]
    fn outcomes_survive_capacity_pressure_unchanged() {
        // Capacity 1 forces a spill/rehydrate on nearly every operation;
        // session outcomes must not notice.
        let ample = serve(2, 16, 2);
        let starved = serve(2, 1, 2);
        for (a, s) in ample.iter().zip(starved.iter()) {
            assert_eq!(a.id, s.id);
            assert_eq!(a.clicks, s.clicks);
            assert_eq!(a.converged, s.converged);
            assert_eq!(a.precision, s.precision);
        }
    }
}
