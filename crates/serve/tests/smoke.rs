//! Crate-level smoke test: the serving layer's pieces work end to end.

use pkgrec_core::{
    AggregationContext, Catalog, EngineConfig, Feedback, LinearUtility, Profile, SimulatedUser,
};
use pkgrec_serve::{user_rng, RecommenderSpec, SessionConfig, SessionStore, StoreConfig};

#[test]
fn store_journal_and_replay_smoke() {
    let mut store = SessionStore::new(StoreConfig {
        shards: 2,
        capacity_per_shard: 2,
    })
    .unwrap();
    let catalog = std::sync::Arc::new(
        Catalog::from_rows(vec![
            vec![0.6, 0.2],
            vec![0.4, 0.4],
            vec![0.2, 0.4],
            vec![0.9, 0.8],
            vec![0.3, 0.7],
        ])
        .unwrap(),
    );
    let mut ids = Vec::new();
    for seed in 0..4u64 {
        ids.push(
            store
                .create(SessionConfig {
                    catalog: catalog.clone(),
                    profile: Profile::cost_quality(),
                    max_package_size: 2,
                    spec: RecommenderSpec::Engine(EngineConfig {
                        k: 2,
                        num_random: 2,
                        num_samples: 15,
                        ..EngineConfig::default()
                    }),
                    seed,
                })
                .unwrap(),
        );
    }
    let context = AggregationContext::new(Profile::cost_quality(), &catalog, 2).unwrap();
    let user = SimulatedUser::new(LinearUtility::new(context, vec![-0.7, 0.6]).unwrap());
    for &id in &ids {
        let shown = store.present(id).unwrap();
        assert_eq!(shown.len(), 4);
        let index = user.choose(&catalog, &shown, &mut user_rng(id.0)).unwrap();
        store.feedback(id, Feedback::Click { index }).unwrap();
        assert_eq!(store.recommend(id).unwrap().len(), 2);
    }
    assert_eq!(store.len(), 4);
    let stats = store.stats();
    assert_eq!(stats.created, 4);
    assert!(stats.journal_events >= 16);
    // With 4 sessions over 2 shards of capacity 2, some spills happened iff
    // both sessions of a shard were interleaved — either way every session
    // is still addressable and consistent.
    for &id in &ids {
        assert_eq!(store.state(id).unwrap().rounds, 1);
    }
}
