//! Manifest smoke test: the threshold-algorithm retrieval agrees with the
//! naive scan on a small point set.

use pkgrec_topk::{top_k, top_k_naive, SortedLists};

#[test]
fn ta_matches_naive_smoke() {
    let points = vec![
        vec![0.9, 0.1],
        vec![0.4, 0.6],
        vec![0.2, 0.9],
        vec![0.7, 0.7],
    ];
    let lists = SortedLists::new(&points);
    let query = [0.8, 0.2];
    let fast = top_k(&lists, &query, 2);
    let naive = top_k_naive(&points, &query, 2);
    let fast_ids: Vec<usize> = fast.items.iter().map(|&(id, _)| id).collect();
    let naive_ids: Vec<usize> = naive.iter().map(|&(id, _)| id).collect();
    assert_eq!(fast_ids, naive_ids);
}
