//! Bounded top-k heap with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry of a [`TopKHeap`]: a score plus an identifier used both as payload
/// and as the deterministic tie-breaker the paper assumes ("ties in utility
/// score are resolved using a deterministic tie-breaker such as the ID of a
/// package", Section 2.1).
#[derive(Debug, Clone, PartialEq)]
struct Entry<I> {
    score: f64,
    id: I,
}

impl<I: Ord + Eq> Eq for Entry<I> {}

impl<I: Ord + Eq> PartialOrd for Entry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: Ord + Eq> Ord for Entry<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the *worst*
        // retained entry on top so it can be evicted cheaply.  The worst entry
        // has the lowest score; among equal scores the larger id loses (the
        // deterministic tie-breaker prefers smaller ids).
        match other.score.partial_cmp(&self.score) {
            Some(Ordering::Equal) | None => self.id.cmp(&other.id),
            Some(ord) => ord,
        }
    }
}

/// A bounded heap that retains the `k` highest-scoring entries.
///
/// Scores compare by `f64` value with ties broken by the smaller identifier
/// winning, which makes every ranking produced by the system deterministic.
/// NaN scores are rejected at insertion time.
#[derive(Debug, Clone)]
pub struct TopKHeap<I> {
    k: usize,
    heap: BinaryHeap<Entry<I>>,
}

impl<I: Ord + Eq + Clone> TopKHeap<I> {
    /// Creates a heap retaining at most `k` entries.
    pub fn new(k: usize) -> Self {
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k` of the heap.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of retained entries (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap already holds `k` entries.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Score of the worst retained entry, i.e. the current lower bound `ηlo`
    /// a new candidate must beat once the heap is full.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Offers an entry; returns `true` if it was retained.
    ///
    /// Non-finite scores are ignored (`false`).
    pub fn push(&mut self, id: I, score: f64) -> bool {
        if self.k == 0 || !score.is_finite() {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, id });
            return true;
        }
        let worst = self.heap.peek().expect("heap is full, hence non-empty");
        let candidate = Entry { score, id };
        // Retain the candidate if it beats the worst entry under the same
        // (score, then smaller-id-wins) ordering used for the final ranking.
        let candidate_better = match candidate.score.partial_cmp(&worst.score) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Less) | None => false,
            Some(Ordering::Equal) => candidate.id < worst.id,
        };
        if candidate_better {
            self.heap.pop();
            self.heap.push(candidate);
            true
        } else {
            false
        }
    }

    /// Whether a candidate with the given score could still enter the heap.
    pub fn would_accept(&self, score: f64) -> bool {
        if !score.is_finite() || self.k == 0 {
            return false;
        }
        !self.is_full() || self.threshold().map(|t| score > t).unwrap_or(true)
    }

    /// Consumes the heap and returns entries ordered best-first.
    pub fn into_sorted(self) -> Vec<(I, f64)> {
        let mut entries: Vec<Entry<I>> = self.heap.into_vec();
        entries.sort_by(|a, b| match b.score.partial_cmp(&a.score) {
            Some(Ordering::Equal) | None => a.id.cmp(&b.id),
            Some(ord) => ord,
        });
        entries.into_iter().map(|e| (e.id, e.score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_k_best() {
        let mut h = TopKHeap::new(3);
        for (i, s) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.push(i, *s);
        }
        let sorted = h.into_sorted();
        assert_eq!(
            sorted.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(sorted[0].1, 5.0);
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let mut h = TopKHeap::new(2);
        h.push(7usize, 1.0);
        h.push(3usize, 1.0);
        h.push(5usize, 1.0);
        let ids: Vec<usize> = h.into_sorted().into_iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn threshold_tracks_worst_retained_entry() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), None);
        h.push(0usize, 10.0);
        h.push(1usize, 20.0);
        assert_eq!(h.threshold(), Some(10.0));
        assert!(h.would_accept(15.0));
        assert!(!h.would_accept(5.0));
        h.push(2usize, 15.0);
        assert_eq!(h.threshold(), Some(15.0));
    }

    #[test]
    fn zero_capacity_and_nan_are_rejected() {
        let mut h = TopKHeap::new(0);
        assert!(!h.push(0usize, 1.0));
        assert!(h.is_empty());
        let mut h = TopKHeap::new(2);
        assert!(!h.push(0usize, f64::NAN));
        assert!(!h.would_accept(f64::NAN));
        assert!(h.is_empty());
    }

    #[test]
    fn push_reports_retention() {
        let mut h = TopKHeap::new(2);
        assert!(h.push(0usize, 1.0));
        assert!(h.push(1usize, 2.0));
        assert!(!h.push(2usize, 0.5));
        assert!(h.push(3usize, 3.0));
        assert_eq!(h.len(), 2);
        assert!(h.is_full());
    }

    #[test]
    fn equal_score_does_not_evict_when_id_is_larger() {
        let mut h = TopKHeap::new(1);
        h.push(1usize, 1.0);
        assert!(!h.push(2usize, 1.0));
        assert!(h.push(0usize, 1.0));
        assert_eq!(h.into_sorted(), vec![(0, 1.0)]);
    }
}
