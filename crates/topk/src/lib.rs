//! Top-k query processing substrate for the `pkgrec` package recommender.
//!
//! The paper leans on "classical top-k query processing" (Ilyas et al.'s
//! survey, reference \[13\]) in two places:
//!
//! * **Sample maintenance** (Section 3.4, Algorithm 1) — finding the samples
//!   in a pool that violate a newly received preference is a threshold-
//!   algorithm scan over per-feature sorted lists of the samples.
//! * **Top-k package search** (Section 4, Algorithm 2) — items are accessed in
//!   round-robin order from per-feature sorted lists and the boundary vector
//!   `τ` bounds the utility of every unseen item.
//!
//! This crate implements that machinery once so both call sites share it:
//!
//! * [`SortedLists`] / [`RoundRobinCursor`] — per-feature sorted index with
//!   round-robin sorted access, direction control (ascending/descending) and
//!   boundary-vector computation,
//! * [`ThresholdScanner`] — resumable TA scan for all points scoring above a
//!   threshold, including the budgeted hybrid used by Algorithm 1,
//! * [`top_k`] — classic TA retrieval of the k best points for a linear query,
//! * [`TopKHeap`] — a bounded result heap with the deterministic id
//!   tie-breaking the paper assumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap;
pub mod scanner;
pub mod sorted_lists;
pub mod ta;

pub use heap::TopKHeap;
pub use scanner::{scan_naive, scan_naive_flat, ScanResult, ThresholdScanner};
pub use sorted_lists::{Direction, RoundRobinCursor, SortedAccess, SortedLists};
pub use ta::{top_k, top_k_naive, TopKResult};
