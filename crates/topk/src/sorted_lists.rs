//! Per-feature sorted lists with round-robin sorted access.
//!
//! Both Algorithm 1 (sample maintenance) and Algorithm 2 (Top-k-Pkg) of the
//! paper access a collection of `m`-dimensional points through *sorted lists*:
//! one list per feature, ordered by that feature's value, visited in
//! round-robin fashion.  After every access the *boundary vector* `τ` — the
//! feature values at the current frontier of each list — upper bounds the score
//! any unseen point can still achieve, which is what lets both algorithms stop
//! early.
//!
//! The paper's footnote in Section 4 notes that "a sorted list can be accessed
//! both forwards and backwards", so a single index per feature serves both
//! ascending and descending access; [`Direction`] selects which end the cursor
//! starts from.

use serde::{Deserialize, Serialize};

/// Direction in which a sorted list is traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Visit the largest values first (preferred when the query weight on this
    /// feature is positive).
    Descending,
    /// Visit the smallest values first (preferred when the query weight is
    /// negative).
    Ascending,
}

impl Direction {
    /// The access direction that visits the *most useful* values first for a
    /// query coefficient of the given sign.
    pub fn for_weight(weight: f64) -> Direction {
        if weight < 0.0 {
            Direction::Ascending
        } else {
            Direction::Descending
        }
    }
}

/// Per-feature sorted index lists over a fixed set of points.
///
/// Construction is `O(m · n log n)`; the lists are immutable afterwards and
/// shared by any number of cursors.  The points themselves are kept in one
/// contiguous row-major buffer (`len × dim`), so candidate scoring and
/// boundary lookups read sequential memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedLists {
    /// `order[d][rank]` = index of the point with the `rank`-th largest value
    /// on dimension `d`.
    order: Vec<Vec<usize>>,
    /// The points, row-major (`len × dim`), kept for boundary lookups and
    /// candidate scoring.
    values: Vec<f64>,
    len: usize,
    dim: usize,
}

impl SortedLists {
    /// Builds sorted lists over the given points.
    ///
    /// # Panics
    /// Panics if points have inconsistent dimensionality.
    pub fn new(points: &[Vec<f64>]) -> Self {
        let dim = points.first().map(|p| p.len()).unwrap_or(0);
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share the same dimensionality"
        );
        let mut flat = Vec::with_capacity(points.len() * dim);
        for point in points {
            flat.extend_from_slice(point);
        }
        SortedLists::from_flat(dim, &flat)
    }

    /// Builds sorted lists directly over a row-major flat buffer (`n × dim`)
    /// — the columnar-pool path: the buffer is copied once into the index,
    /// with no per-point `Vec` allocations.
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of `dim` (a `dim` of 0
    /// requires an empty buffer).
    pub fn from_flat(dim: usize, values: &[f64]) -> Self {
        let len = if dim == 0 {
            assert!(
                values.is_empty(),
                "a zero-dimensional index cannot hold points"
            );
            0
        } else {
            assert_eq!(
                values.len() % dim,
                0,
                "flat buffer length {} is not a multiple of the dimensionality {dim}",
                values.len()
            );
            values.len() / dim
        };
        let mut order = Vec::with_capacity(dim);
        for d in 0..dim {
            let mut ids: Vec<usize> = (0..len).collect();
            ids.sort_by(|&a, &b| {
                values[b * dim + d]
                    .partial_cmp(&values[a * dim + d])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });
            order.push(ids);
        }
        SortedLists {
            order,
            values: values.to_vec(),
            len,
            dim,
        }
    }

    /// Builds sorted lists over a *stride-padded* row-major buffer: rows of
    /// `dim` meaningful floats stored every `stride` floats (pad lanes
    /// ignored) — the layout of the core crate's SIMD-shaped weight matrix.
    /// The index densifies the rows into its own tight `len × dim` buffer,
    /// so cursors and serialisation are unaffected by the caller's padding.
    ///
    /// # Panics
    /// Panics if `stride < dim` or `values.len()` is not a multiple of
    /// `stride` (a `stride` of 0 requires an empty buffer and `dim` 0).
    pub fn from_strided(dim: usize, stride: usize, values: &[f64]) -> Self {
        assert!(
            stride >= dim,
            "row stride {stride} cannot be smaller than the dimensionality {dim}"
        );
        if stride == dim {
            return SortedLists::from_flat(dim, values);
        }
        assert_eq!(
            values.len() % stride,
            0,
            "strided buffer length {} is not a multiple of the stride {stride}",
            values.len()
        );
        let len = values.len() / stride;
        let mut flat = Vec::with_capacity(len * dim);
        for row in values.chunks_exact(stride) {
            flat.extend_from_slice(&row[..dim]);
        }
        SortedLists::from_flat(dim, &flat)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the structure indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of a point.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.values[id * self.dim..(id + 1) * self.dim]
    }

    /// All indexed points as one row-major flat buffer (`len × dim`).
    pub fn values_flat(&self) -> &[f64] {
        &self.values
    }

    /// The id at a given rank of dimension `d`'s list in the given direction.
    pub fn id_at(&self, d: usize, rank: usize, direction: Direction) -> Option<usize> {
        let list = &self.order[d];
        match direction {
            Direction::Descending => list.get(rank).copied(),
            Direction::Ascending => {
                if rank < list.len() {
                    Some(list[list.len() - 1 - rank])
                } else {
                    None
                }
            }
        }
    }

    /// The feature value at a given rank of dimension `d`'s list.
    pub fn value_at(&self, d: usize, rank: usize, direction: Direction) -> Option<f64> {
        self.id_at(d, rank, direction).map(|id| self.point(id)[d])
    }
}

/// A round-robin cursor over the sorted lists of a [`SortedLists`] index.
///
/// The cursor remembers, per dimension, how deep it has advanced and in which
/// direction; [`RoundRobinCursor::next_access`] performs one sorted access and
/// [`RoundRobinCursor::boundary`] returns the current boundary vector `τ`.
#[derive(Debug, Clone)]
pub struct RoundRobinCursor<'a> {
    lists: &'a SortedLists,
    directions: Vec<Direction>,
    /// Next rank to visit per dimension.
    positions: Vec<usize>,
    /// Dimensions that participate in the round-robin (non-zero query weight).
    active_dims: Vec<usize>,
    /// Which entry of `active_dims` the next access uses.
    turn: usize,
}

/// One sorted access performed by the cursor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortedAccess {
    /// The dimension whose list was accessed.
    pub dim: usize,
    /// The rank (depth) within that list.
    pub rank: usize,
    /// The id of the point found there.
    pub id: usize,
    /// The point's value on that dimension.
    pub value: f64,
}

impl<'a> RoundRobinCursor<'a> {
    /// Creates a cursor over all dimensions using the given directions.
    ///
    /// # Panics
    /// Panics if `directions.len()` differs from the index dimensionality.
    pub fn new(lists: &'a SortedLists, directions: Vec<Direction>) -> Self {
        assert_eq!(directions.len(), lists.dim(), "one direction per dimension");
        let active_dims = (0..lists.dim()).collect();
        RoundRobinCursor {
            lists,
            directions,
            positions: vec![0; lists.dim()],
            active_dims,
            turn: 0,
        }
    }

    /// Creates a cursor whose directions follow the signs of a query vector
    /// and which skips dimensions with zero query weight entirely.
    pub fn for_query(lists: &'a SortedLists, query: &[f64]) -> Self {
        assert_eq!(
            query.len(),
            lists.dim(),
            "query must match index dimensionality"
        );
        let directions = query.iter().map(|&q| Direction::for_weight(q)).collect();
        let active_dims = (0..lists.dim())
            .filter(|&d| query[d] != 0.0)
            .collect::<Vec<_>>();
        RoundRobinCursor {
            lists,
            directions,
            positions: vec![0; lists.dim()],
            active_dims,
            turn: 0,
        }
    }

    /// Dimensions participating in the round-robin.
    pub fn active_dims(&self) -> &[usize] {
        &self.active_dims
    }

    /// Total number of sorted accesses performed so far.
    pub fn accesses(&self) -> usize {
        self.positions.iter().sum()
    }

    /// Number of not-yet-visited entries in the list that would be accessed
    /// next (the `Cremain` quantity of Algorithm 1).
    pub fn remaining_in_current_list(&self) -> usize {
        match self.current_dim() {
            Some(d) => self.lists.len().saturating_sub(self.positions[d]),
            None => 0,
        }
    }

    /// The dimension the next access will touch, if any dimension is active
    /// and not yet exhausted.
    pub fn current_dim(&self) -> Option<usize> {
        if self.active_dims.is_empty() {
            return None;
        }
        // Find the next active dimension whose list is not exhausted.
        for offset in 0..self.active_dims.len() {
            let d = self.active_dims[(self.turn + offset) % self.active_dims.len()];
            if self.positions[d] < self.lists.len() {
                return Some(d);
            }
        }
        None
    }

    /// Performs one sorted access in round-robin order; `None` once every
    /// active list is exhausted.
    pub fn next_access(&mut self) -> Option<SortedAccess> {
        if self.active_dims.is_empty() {
            return None;
        }
        for offset in 0..self.active_dims.len() {
            let slot = (self.turn + offset) % self.active_dims.len();
            let d = self.active_dims[slot];
            if self.positions[d] < self.lists.len() {
                let rank = self.positions[d];
                let id = self
                    .lists
                    .id_at(d, rank, self.directions[d])
                    .expect("rank is in range");
                let value = self.lists.point(id)[d];
                self.positions[d] += 1;
                self.turn = (slot + 1) % self.active_dims.len();
                return Some(SortedAccess {
                    dim: d,
                    rank,
                    id,
                    value,
                });
            }
        }
        None
    }

    /// The boundary vector `τ`: for every dimension, the value at the frontier
    /// of its list (the last value accessed, or the list's best value if the
    /// list has not been touched yet).  Inactive dimensions report the value a
    /// query with zero weight would ignore anyway (their best value).
    pub fn boundary(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.lists.dim()];
        self.write_boundary(&mut out);
        out
    }

    /// Writes the boundary vector `τ` into a caller-owned buffer — the
    /// allocation-free form hot scan loops call once per sorted access.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the index dimensionality.
    pub fn write_boundary(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.lists.dim(),
            "boundary buffer must have one slot per dimension"
        );
        for (d, slot) in out.iter_mut().enumerate() {
            let seen = self.positions[d];
            let rank = if seen == 0 {
                0
            } else {
                (seen - 1).min(self.lists.len().saturating_sub(1))
            };
            *slot = self
                .lists
                .value_at(d, rank, self.directions[d])
                .unwrap_or(0.0);
        }
    }

    /// Upper bound of `query · x` over every *unseen* point, computed from the
    /// boundary vector.  Once this drops to or below a caller-side threshold
    /// the scan can stop (the TA stopping rule).
    pub fn upper_bound(&self, query: &[f64]) -> f64 {
        debug_assert_eq!(query.len(), self.lists.dim());
        self.boundary()
            .iter()
            .zip(query.iter())
            .map(|(t, q)| t * q)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Vec<f64>> {
        vec![
            vec![0.9, 0.1],
            vec![0.5, 0.5],
            vec![0.1, 0.9],
            vec![0.7, 0.3],
        ]
    }

    #[test]
    fn lists_are_sorted_descending_with_stable_ties() {
        let lists = SortedLists::new(&sample_points());
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.dim(), 2);
        // Dimension 0 descending: 0.9, 0.7, 0.5, 0.1 -> ids 0, 3, 1, 2.
        let ids: Vec<usize> = (0..4)
            .map(|r| lists.id_at(0, r, Direction::Descending).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 3, 1, 2]);
        // Ascending is the reverse.
        let ids: Vec<usize> = (0..4)
            .map(|r| lists.id_at(0, r, Direction::Ascending).unwrap())
            .collect();
        assert_eq!(ids, vec![2, 1, 3, 0]);
        assert_eq!(lists.id_at(0, 4, Direction::Descending), None);
        assert_eq!(lists.value_at(1, 0, Direction::Descending), Some(0.9));
    }

    #[test]
    fn ties_order_by_smaller_id_first() {
        let points = vec![vec![0.5], vec![0.5], vec![0.5]];
        let lists = SortedLists::new(&points);
        let ids: Vec<usize> = (0..3)
            .map(|r| lists.id_at(0, r, Direction::Descending).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "same dimensionality")]
    fn ragged_points_panic() {
        let _ = SortedLists::new(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn flat_construction_matches_row_construction() {
        let rows = sample_points();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let from_rows = SortedLists::new(&rows);
        let from_flat = SortedLists::from_flat(2, &flat);
        assert_eq!(from_flat.len(), from_rows.len());
        assert_eq!(from_flat.dim(), from_rows.dim());
        assert_eq!(from_flat.values_flat(), flat.as_slice());
        for d in 0..2 {
            for rank in 0..rows.len() {
                assert_eq!(
                    from_flat.id_at(d, rank, Direction::Descending),
                    from_rows.id_at(d, rank, Direction::Descending)
                );
            }
        }
        assert_eq!(from_flat.point(3), from_rows.point(3));
    }

    #[test]
    #[should_panic(expected = "not a multiple of the dimensionality")]
    fn misaligned_flat_buffer_panics() {
        let _ = SortedLists::from_flat(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn round_robin_alternates_dimensions() {
        let lists = SortedLists::new(&sample_points());
        let mut cursor =
            RoundRobinCursor::new(&lists, vec![Direction::Descending, Direction::Descending]);
        let dims: Vec<usize> = (0..4).map(|_| cursor.next_access().unwrap().dim).collect();
        assert_eq!(dims, vec![0, 1, 0, 1]);
        assert_eq!(cursor.accesses(), 4);
    }

    #[test]
    fn boundary_tracks_frontier_values() {
        let lists = SortedLists::new(&sample_points());
        let mut cursor =
            RoundRobinCursor::new(&lists, vec![Direction::Descending, Direction::Descending]);
        // Before any access the boundary is the per-dimension maximum.
        assert_eq!(cursor.boundary(), vec![0.9, 0.9]);
        cursor.next_access(); // dim 0 -> value 0.9
        cursor.next_access(); // dim 1 -> value 0.9
        cursor.next_access(); // dim 0 -> value 0.7
        assert_eq!(cursor.boundary(), vec![0.7, 0.9]);
        let ub = cursor.upper_bound(&[1.0, 1.0]);
        assert!((ub - 1.6).abs() < 1e-12);
    }

    #[test]
    fn write_boundary_matches_boundary_without_allocating_per_call() {
        let lists = SortedLists::new(&sample_points());
        let mut cursor =
            RoundRobinCursor::new(&lists, vec![Direction::Descending, Direction::Ascending]);
        let mut buf = vec![0.0; 2];
        for _ in 0..5 {
            cursor.write_boundary(&mut buf);
            assert_eq!(buf, cursor.boundary());
            cursor.next_access();
        }
    }

    #[test]
    #[should_panic(expected = "one slot per dimension")]
    fn write_boundary_rejects_misshaped_buffers() {
        let lists = SortedLists::new(&sample_points());
        let cursor = RoundRobinCursor::new(&lists, vec![Direction::Descending; 2]);
        cursor.write_boundary(&mut [0.0]);
    }

    #[test]
    fn query_directions_follow_sign_and_skip_zero_weights() {
        let lists = SortedLists::new(&sample_points());
        let query = [0.0, -1.0];
        let mut cursor = RoundRobinCursor::for_query(&lists, &query);
        assert_eq!(cursor.active_dims(), &[1]);
        // Negative weight -> ascending access: smallest dim-1 value first.
        let access = cursor.next_access().unwrap();
        assert_eq!(access.dim, 1);
        assert_eq!(access.id, 0);
        assert!((access.value - 0.1).abs() < 1e-12);
        // The boundary on dim 1 is now 0.1, so the upper bound of -1 * x1 over
        // unseen points is -0.1... all unseen points have larger dim-1 values.
        assert!((cursor.upper_bound(&query) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn cursor_exhausts_and_reports_remaining() {
        let lists = SortedLists::new(&sample_points());
        let mut cursor = RoundRobinCursor::for_query(&lists, &[1.0, 0.0]);
        assert_eq!(cursor.remaining_in_current_list(), 4);
        let mut count = 0;
        while cursor.next_access().is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
        assert_eq!(cursor.remaining_in_current_list(), 0);
        assert_eq!(cursor.current_dim(), None);
        assert!(cursor.next_access().is_none());
    }

    #[test]
    fn direction_for_weight() {
        assert_eq!(Direction::for_weight(0.5), Direction::Descending);
        assert_eq!(Direction::for_weight(0.0), Direction::Descending);
        assert_eq!(Direction::for_weight(-0.5), Direction::Ascending);
    }

    #[test]
    fn empty_index_is_harmless() {
        let lists = SortedLists::new(&[]);
        assert!(lists.is_empty());
        assert_eq!(lists.dim(), 0);
        let mut cursor = RoundRobinCursor::new(&lists, vec![]);
        assert!(cursor.next_access().is_none());
        assert_eq!(cursor.boundary(), Vec::<f64>::new());
    }
}
