//! Classic threshold-algorithm top-k retrieval for linear scoring functions.
//!
//! "Given a set T of items and a fixed w for the utility function, the problem
//! of finding the k best items w.r.t. w can be done using any standard top-k
//! query processing technique" (Section 4).  This module provides that
//! standard technique over the [`SortedLists`] index: round-robin sorted
//! access, a bounded result heap, and the `threshold ≤ ηlo` stopping rule.

use crate::heap::TopKHeap;
use crate::sorted_lists::{RoundRobinCursor, SortedLists};

/// Result of a [`top_k`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// `(id, score)` pairs ordered best-first.
    pub items: Vec<(usize, f64)>,
    /// Number of sorted accesses performed before the bound closed.
    pub sorted_accesses: usize,
}

/// Returns the `k` points maximising `query · x` using the threshold
/// algorithm, stopping as soon as no unseen point can enter the result.
pub fn top_k(lists: &SortedLists, query: &[f64], k: usize) -> TopKResult {
    assert_eq!(
        query.len(),
        lists.dim(),
        "query must match index dimensionality"
    );
    let mut heap = TopKHeap::new(k);
    let mut cursor = RoundRobinCursor::for_query(lists, query);
    let mut seen = std::collections::HashSet::new();
    if k == 0 || lists.is_empty() {
        return TopKResult {
            items: Vec::new(),
            sorted_accesses: 0,
        };
    }
    // A query with no active dimension scores every point 0; any k points with
    // the smallest ids form the answer by the deterministic tie-breaker.
    if cursor.active_dims().is_empty() {
        let items = (0..k.min(lists.len())).map(|id| (id, 0.0)).collect();
        return TopKResult {
            items,
            sorted_accesses: 0,
        };
    }
    while let Some(access) = cursor.next_access() {
        if seen.insert(access.id) {
            let score: f64 = lists
                .point(access.id)
                .iter()
                .zip(query.iter())
                .map(|(x, q)| x * q)
                .sum();
            heap.push(access.id, score);
        }
        // Stop once the heap is full and even the best possible unseen score
        // cannot beat the current k-th best.
        if heap.is_full() {
            let upper = cursor.upper_bound(query);
            if let Some(lo) = heap.threshold() {
                if upper <= lo {
                    break;
                }
            }
        }
    }
    TopKResult {
        items: heap.into_sorted(),
        sorted_accesses: cursor.accesses(),
    }
}

/// Brute-force reference implementation of [`top_k`].
pub fn top_k_naive(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.iter().zip(query.iter()).map(|(x, q)| x * q).sum()))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn matches_naive_on_random_instances() {
        for seed in 0..5u64 {
            let points = random_points(200, 3, seed);
            let lists = SortedLists::new(&points);
            for query in [
                vec![1.0, 0.5, 0.2],
                vec![-0.4, 0.9, 0.0],
                vec![-1.0, -1.0, -1.0],
            ] {
                let got = top_k(&lists, &query, 10);
                let expected = top_k_naive(&points, &query, 10);
                let got_ids: Vec<usize> = got.items.iter().map(|(i, _)| *i).collect();
                let expected_ids: Vec<usize> = expected.iter().map(|(i, _)| *i).collect();
                assert_eq!(got_ids, expected_ids, "seed {seed} query {query:?}");
            }
        }
    }

    #[test]
    fn stops_early_on_skewed_data() {
        let mut points = vec![vec![0.01, 0.01]; 5000];
        points.push(vec![0.99, 0.99]);
        let lists = SortedLists::new(&points);
        let result = top_k(&lists, &[0.5, 0.5], 1);
        assert_eq!(result.items[0].0, 5000);
        assert!(
            result.sorted_accesses < 50,
            "expected early termination, got {} accesses",
            result.sorted_accesses
        );
    }

    #[test]
    fn k_larger_than_collection_returns_everything() {
        let points = random_points(7, 2, 1);
        let lists = SortedLists::new(&points);
        let result = top_k(&lists, &[1.0, 1.0], 20);
        assert_eq!(result.items.len(), 7);
    }

    #[test]
    fn zero_k_and_empty_collection() {
        let points = random_points(5, 2, 2);
        let lists = SortedLists::new(&points);
        assert!(top_k(&lists, &[1.0, 1.0], 0).items.is_empty());
        let empty = SortedLists::new(&[]);
        assert!(top_k(&empty, &[], 3).items.is_empty());
    }

    #[test]
    fn zero_query_uses_id_tie_breaker() {
        let points = random_points(10, 2, 3);
        let lists = SortedLists::new(&points);
        let result = top_k(&lists, &[0.0, 0.0], 3);
        let ids: Vec<usize> = result.items.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn naive_reference_orders_ties_by_id() {
        let points = vec![vec![0.5], vec![0.5], vec![0.7]];
        let ranked = top_k_naive(&points, &[1.0], 3);
        let ids: Vec<usize> = ranked.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![2, 0, 1]);
    }
}
