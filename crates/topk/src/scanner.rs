//! Threshold-algorithm scans over sorted lists.
//!
//! [`ThresholdScanner`] wraps a [`RoundRobinCursor`] for a linear query
//! `q · x` and exposes the classic TA loop: perform sorted accesses, remember
//! which points have been seen, and stop as soon as the boundary vector proves
//! that no unseen point can exceed the caller's threshold.  Algorithm 1 of the
//! paper (finding samples that violate a new preference) is exactly a scan for
//! all points with `q · x > 0` where `q = p2 - p1`.

use std::collections::HashSet;

use crate::sorted_lists::{RoundRobinCursor, SortedLists};

/// Outcome of a threshold scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// Ids of points whose score strictly exceeds the threshold.
    pub matches: Vec<usize>,
    /// Number of sorted accesses performed.
    pub sorted_accesses: usize,
    /// Number of distinct points examined (random accesses).
    pub distinct_seen: usize,
    /// Whether the scan stopped early thanks to the TA bound (as opposed to
    /// exhausting every list or hitting the access budget).
    pub stopped_early: bool,
}

/// A resumable TA scan for points with `query · x > threshold`.
#[derive(Debug)]
pub struct ThresholdScanner<'a> {
    lists: &'a SortedLists,
    query: Vec<f64>,
    threshold: f64,
    cursor: RoundRobinCursor<'a>,
    seen: HashSet<usize>,
    matches: Vec<usize>,
    stopped_early: bool,
}

impl<'a> ThresholdScanner<'a> {
    /// Creates a scanner for all points with `query · x > threshold`.
    pub fn new(lists: &'a SortedLists, query: Vec<f64>, threshold: f64) -> Self {
        let cursor = RoundRobinCursor::for_query(lists, &query);
        ThresholdScanner {
            lists,
            query,
            threshold,
            cursor,
            seen: HashSet::new(),
            matches: Vec::new(),
            stopped_early: false,
        }
    }

    /// The score of a specific point under the scanner's query.
    pub fn score(&self, id: usize) -> f64 {
        self.lists
            .point(id)
            .iter()
            .zip(self.query.iter())
            .map(|(x, q)| x * q)
            .sum()
    }

    /// Number of sorted accesses performed so far (`Cprocessed`).
    pub fn sorted_accesses(&self) -> usize {
        self.cursor.accesses()
    }

    /// Entries remaining in the list the next access would touch (`Cremain`).
    pub fn remaining_in_current_list(&self) -> usize {
        self.cursor.remaining_in_current_list()
    }

    /// Whether the TA stopping condition already holds: no unseen point can
    /// have a score above the threshold.
    pub fn can_stop(&self) -> bool {
        self.cursor.upper_bound(&self.query) <= self.threshold
    }

    /// Performs one TA step (one sorted access plus the membership check).
    /// Returns `false` when the scan is finished — either because the bound
    /// closed or because every list is exhausted.
    pub fn step(&mut self) -> bool {
        match self.cursor.next_access() {
            None => false,
            Some(access) => {
                if self.seen.insert(access.id) && self.score(access.id) > self.threshold {
                    self.matches.push(access.id);
                }
                if self.can_stop() {
                    self.stopped_early = true;
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Runs the scan to completion under the TA stopping rule.
    pub fn run(mut self) -> ScanResult {
        while self.step() {}
        self.finish()
    }

    /// Runs the scan but gives up on TA once
    /// `sorted_accesses + remaining_in_current_list >= budget`, at which point
    /// the remaining *unseen* points are checked by brute force.  This is the
    /// hybrid strategy of Algorithm 1 with `budget = (1 + γ) · |S|`.
    pub fn run_with_budget(mut self, budget: usize) -> ScanResult {
        loop {
            if self.can_stop() {
                self.stopped_early = true;
                break;
            }
            if self.sorted_accesses() + self.remaining_in_current_list() >= budget {
                // Fall back: one flat scan over the columnar point storage;
                // points already seen were matched (or not) when first seen,
                // so only previously unseen matches are added.
                for id in scan_naive_flat(self.lists.values_flat(), &self.query, self.threshold) {
                    if self.seen.insert(id) {
                        self.matches.push(id);
                    }
                }
                self.seen.extend(0..self.lists.len());
                break;
            }
            if !self.step() {
                break;
            }
        }
        self.finish()
    }

    fn finish(self) -> ScanResult {
        let mut matches = self.matches;
        matches.sort_unstable();
        ScanResult {
            matches,
            sorted_accesses: self.cursor.accesses(),
            distinct_seen: self.seen.len(),
            stopped_early: self.stopped_early,
        }
    }
}

/// Brute-force reference: ids of all points with `query · x > threshold`.
pub fn scan_naive(points: &[Vec<f64>], query: &[f64], threshold: f64) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.iter().zip(query.iter()).map(|(x, q)| x * q).sum::<f64>() > threshold)
        .map(|(i, _)| i)
        .collect()
}

/// [`scan_naive`] over a row-major flat buffer (`n × dim`) — the variant that
/// scans columnar point storage without materialising per-point `Vec`s.
///
/// # Panics
/// Panics if `points.len()` is not a multiple of `query.len()` (an empty
/// query requires an empty buffer).
pub fn scan_naive_flat(points: &[f64], query: &[f64], threshold: f64) -> Vec<usize> {
    let dim = query.len();
    if dim == 0 {
        assert!(
            points.is_empty(),
            "a zero-dimensional scan cannot hold points"
        );
        return Vec::new();
    }
    assert_eq!(
        points.len() % dim,
        0,
        "flat buffer length {} is not a multiple of the query dimensionality {dim}",
        points.len()
    );
    points
        .chunks_exact(dim)
        .enumerate()
        .filter(|(_, p)| p.iter().zip(query.iter()).map(|(x, q)| x * q).sum::<f64>() > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn scan_matches_naive_reference() {
        let points = random_points(500, 4, 7);
        let lists = SortedLists::new(&points);
        for (qi, query) in [
            vec![0.3, -0.2, 0.5, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![-0.5, -0.5, 0.0, 0.0],
        ]
        .into_iter()
        .enumerate()
        {
            let result = ThresholdScanner::new(&lists, query.clone(), 0.0).run();
            let expected = scan_naive(&points, &query, 0.0);
            assert_eq!(result.matches, expected, "query {qi}");
        }
    }

    #[test]
    fn scan_with_budget_matches_naive_reference() {
        let points = random_points(300, 3, 11);
        let lists = SortedLists::new(&points);
        let query = vec![0.7, -0.3, 0.4];
        for budget in [0, 10, 150, 10_000] {
            let result = ThresholdScanner::new(&lists, query.clone(), 0.0).run_with_budget(budget);
            assert_eq!(
                result.matches,
                scan_naive(&points, &query, 0.0),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn scan_stops_early_when_few_points_match() {
        // One outlier point scores far above everything else; TA should finish
        // after visiting only a prefix of the lists.
        let mut points = vec![vec![0.01, 0.01]; 1000];
        points.push(vec![0.9, 0.9]);
        let lists = SortedLists::new(&points);
        let query = vec![1.0, 1.0];
        let result = ThresholdScanner::new(&lists, query, 0.5).run();
        assert_eq!(result.matches, vec![1000]);
        assert!(result.stopped_early);
        assert!(
            result.sorted_accesses < 100,
            "expected early stop, performed {} accesses",
            result.sorted_accesses
        );
    }

    #[test]
    fn flat_scan_matches_row_scan() {
        let points = random_points(200, 3, 17);
        let flat: Vec<f64> = points.iter().flatten().copied().collect();
        let query = vec![0.4, -0.7, 0.2];
        assert_eq!(
            scan_naive_flat(&flat, &query, 0.1),
            scan_naive(&points, &query, 0.1)
        );
        assert!(scan_naive_flat(&[], &[], 0.0).is_empty());
    }

    #[test]
    fn scan_handles_no_matches() {
        let points = vec![vec![0.1, 0.1], vec![0.2, 0.2]];
        let lists = SortedLists::new(&points);
        let result = ThresholdScanner::new(&lists, vec![1.0, 1.0], 10.0).run();
        assert!(result.matches.is_empty());
        assert!(result.stopped_early);
    }

    #[test]
    fn scan_handles_all_matches() {
        let points = vec![vec![0.5], vec![0.9], vec![0.7]];
        let lists = SortedLists::new(&points);
        let result = ThresholdScanner::new(&lists, vec![1.0], 0.0).run();
        assert_eq!(result.matches, vec![0, 1, 2]);
    }

    #[test]
    fn zero_query_matches_nothing_above_zero() {
        let points = random_points(50, 3, 3);
        let lists = SortedLists::new(&points);
        let result = ThresholdScanner::new(&lists, vec![0.0, 0.0, 0.0], 0.0).run();
        assert!(result.matches.is_empty());
        assert_eq!(result.sorted_accesses, 0);
    }

    #[test]
    fn negative_threshold_includes_negative_scores() {
        let points = vec![vec![-0.5], vec![-0.2], vec![0.3]];
        let lists = SortedLists::new(&points);
        let result = ThresholdScanner::new(&lists, vec![1.0], -0.3).run();
        assert_eq!(result.matches, vec![1, 2]);
    }
}
