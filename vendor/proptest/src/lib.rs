//! Minimal vendored stand-in for the `proptest` API surface used by the
//! `pkgrec` integration tests: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) over
//! numeric ranges, `prop::collection::vec`, [`ProptestConfig`](test_runner::ProptestConfig) and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test function runs its
//! body over `cases` deterministically seeded random inputs, so failures are
//! reproducible run to run.

#![forbid(unsafe_code)]

/// Test-case generation (a deterministic SplitMix64 stream per case).
pub mod test_runner {
    /// Source of randomness handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic generator for the given case index.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                // Golden-ratio offsets keep neighbouring cases decorrelated.
                state: 0x9E37_79B9_7F4A_7C15u64
                    .wrapping_mul(u64::from(case).wrapping_add(0x0DDB_1A5E)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test body runs over.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    /// Strategy returned by [`crate::prop::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min_len: usize,
        pub(crate) max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.max_len > self.min_len {
                self.min_len + rng.below((self.max_len - self.min_len) as u64) as usize
            } else {
                self.min_len
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors the `proptest::prop` helper namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// Sizes accepted by [`vec()`]: an exact length or a half-open range.
        pub trait IntoSizeRange {
            /// Converts into `(min_len, max_len)` with `max_len` exclusive.
            fn into_size_range(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> (usize, usize) {
                (self, self)
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn into_size_range(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end)
            }
        }

        /// A strategy producing `Vec`s of `element` with a size drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min_len, max_len) = size.into_size_range();
            VecStrategy {
                element,
                min_len,
                max_len,
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the block, as with
/// real proptest) running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
