//! Minimal vendored stand-in for the `rand` 0.8 API surface used by the
//! `pkgrec` workspace: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`) and [`rngs::StdRng`] (xoshiro256++).
//!
//! The build environment has no registry access, so this crate implements
//! exactly what the workspace exercises. Streams are deterministic for a given
//! seed but are *not* bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]

/// A low-level source of random bits (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its "standard" distribution (`[0, 1)` for floats).
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range. Panics if empty.
    fn gen_range<T, Rg: distributions::SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sampling support traits backing [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable by [`crate::Rng::gen`].
    pub trait StandardSample: Sized {
        /// Draws one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl StandardSample for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    /// Element types uniformly samplable from an interval (mirror of
    /// `rand::distributions::uniform::SampleUniform`).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Draws a value from `[lo, hi)` (`hi` included when `inclusive`).
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    // Multiply-shift bounded sampling: unbiased enough for experiments.
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u64;
                    assert!(span > 0, "cannot sample empty range");
                    (lo as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        )*};
    }
    int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(if inclusive { lo <= hi } else { lo < hi },
                        "cannot sample empty range");
                    let u: $t = StandardSample::sample_standard(rng);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_uniform!(f32, f64);

    /// Ranges samplable by [`crate::Rng::gen_range`]. The single generic impl
    /// per range shape keeps type inference identical to real rand (the range
    /// element type determines the sampled type).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(*self.start(), *self.end(), true, rng)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut state = 0x6A09_E667_F3BC_C909;
                for slot in &mut s {
                    *slot = super::splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let n = a.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let f = a.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dynrng.gen_range(0..5usize);
        assert!(n < 5);
    }
}
