//! Minimal vendored stand-in for the `serde_json` API surface used by the
//! `pkgrec` workspace: [`to_string`], [`to_string_pretty`], [`to_value`],
//! [`from_str`], the byte-level [`to_vec`] / [`from_slice`] pair used by the
//! `pkgrec-serve` segment codec, and the [`Value`] tree (shared with the
//! vendored `serde`).

#![forbid(unsafe_code)]

pub use serde::json_model::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON conversion (shared with the serde stub).
pub use serde::DeError as Error;

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_json_value(&value)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value> {
    from_str::<Value>(s)
}

/// Serializes a value to compact JSON bytes (the byte-level twin of
/// [`to_string`], used where the payload is framed into a binary record).
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON bytes.  The payload must be valid UTF-8
/// (JSON is a text format); anything else is a deserialization error, not a
/// panic — binary readers lean on this to detect corrupt frames.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("payload is not valid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        // Integers print identically from `Int` and from an integral
        // `Number` (f64 Display never emits a trailing `.0`), so moving a
        // value between the two variants cannot change serialised bytes.
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's shortest-roundtrip Display keeps `from_str` lossless.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error(format!("invalid number at offset {start}")))?;
        // Plain integer literals parse losslessly into `Int`; anything with
        // a fraction or exponent (or beyond i128, or `-0`, whose sign only
        // an f64 can carry) falls back to `Number`.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) && text != "-0" {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("invalid \\u escape `{hex}`")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-synchronise on UTF-8 boundaries for multi-byte chars.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("pkg\n\"rec\"".into())),
            (
                "weights".into(),
                Value::Array(vec![
                    Value::Number(0.1),
                    Value::Number(-3.25e-7),
                    Value::Int(12),
                ]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(value_from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn byte_surface_round_trips_and_rejects_non_utf8() {
        let v = Value::Object(vec![
            ("id".into(), Value::Int(7)),
            ("name".into(), Value::String("päckage \"x\"".into())),
        ]);
        let bytes = to_vec(&v).unwrap();
        assert_eq!(bytes, to_string(&v).unwrap().into_bytes());
        assert_eq!(from_slice::<Value>(&bytes).unwrap(), v);

        // Invalid UTF-8 is a clean error (framed binary readers rely on it).
        let err = from_slice::<Value>(&[b'"', 0xFF, 0xFE, b'"']).unwrap_err();
        assert!(err.0.contains("UTF-8"));
        // And so is a truncated payload.
        assert!(from_slice::<Value>(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn roundtrips_float_precision() {
        for x in [0.1 + 0.2, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn roundtrips_large_integers_exactly() {
        // Values above 2^53 are indistinguishable after an f64 detour; the
        // `Int` variant must carry them bit-exactly through text.
        for x in [u64::MAX, (1u64 << 53) + 1, 0x9e37_79b9_7f4a_7c15, 0] {
            let s = to_string(&x).unwrap();
            assert_eq!(s, x.to_string());
            let back: u64 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
        let s = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&s).unwrap(), i64::MIN);
        // Integral text re-serialises byte-identically whether it entered
        // the tree as an `Int` or as an integral `Number`.
        assert_eq!(to_string(&Value::Int(42)).unwrap(), "42");
        assert_eq!(to_string(&Value::Number(42.0)).unwrap(), "42");
        assert_eq!(value_from_str("42").unwrap(), Value::Int(42));
        assert_eq!(value_from_str("42.0").unwrap(), Value::Number(42.0));
        // `-0` keeps its sign only as a float; the integer fast path must
        // not collapse it to `0`.
        assert_eq!(value_from_str("-0").unwrap(), Value::Number(-0.0));
        assert_eq!(to_string(&value_from_str("-0").unwrap()).unwrap(), "-0");
        // Integers beyond i128 still parse (as an approximate float),
        // matching the old behaviour rather than erroring.
        assert!(matches!(
            value_from_str("340282366920938463463374607431768211456").unwrap(),
            Value::Number(_)
        ));
    }
}
