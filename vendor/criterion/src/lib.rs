//! Minimal vendored stand-in for the `criterion` API surface used by the
//! `pkgrec` benches: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical sampling, each benchmark body is timed over a small
//! fixed number of iterations and the mean is printed — enough to compare
//! figure workloads and to smoke-run the harness with
//! `cargo bench -p pkgrec-bench -- --test`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations per benchmark in normal mode.
const DEFAULT_ITERATIONS: u32 = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a single smoke iteration per bench.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        self.run(&label, &mut f);
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: &mut F) {
        let iterations = if self.test_mode {
            1
        } else {
            DEFAULT_ITERATIONS
        };
        let mut bencher = Bencher {
            iterations,
            total_nanos: 0,
            timed_iterations: 0,
        };
        f(&mut bencher);
        if bencher.timed_iterations > 0 {
            let mean = bencher.total_nanos / u128::from(bencher.timed_iterations);
            println!("bench: {label:<60} {:>12} ns/iter", mean);
        } else {
            println!("bench: {label:<60} (no iterations)");
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run(&label, &mut |b: &mut Bencher| f(b, input));
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run(&label, &mut f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Times the benchmark body.
pub struct Bencher {
    iterations: u32,
    total_nanos: u128,
    timed_iterations: u32,
}

impl Bencher {
    /// Runs the routine `iterations` times and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let out = routine();
            self.total_nanos += start.elapsed().as_nanos();
            black_box(out);
        }
        self.timed_iterations += self.iterations;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
