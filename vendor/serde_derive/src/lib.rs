//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored `serde` stub.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`
//! available offline). Supports the shapes the `pkgrec` workspace actually
//! uses: non-generic structs with named fields, tuple structs, unit structs,
//! and enums whose variants are unit, tuple or struct-like. Field `#[serde]`
//! attributes are not supported and generics are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

enum Body {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize` (stub data model: straight to a JSON value).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (stub data model: from a JSON value).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`# [...]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, body }
}

/// Extracts the field names from a named-fields stream, skipping attributes,
/// visibility and the type tokens (tracking `<...>` nesting for the commas).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde_derive stub: expected field name, got {tt:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts comma-separated items at the top level of a token stream.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive stub: expected variant name, got {tt:?}");
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
        // Consume up to and including the separating comma (skips `= disc`).
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::Unit => {
            body.push_str("::serde::json_model::Value::Null");
        }
        Body::Named(fields) => {
            body.push_str("::serde::json_model::Value::Object(::std::vec![");
            for f in fields {
                let _ = write!(
                    body,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f})),"
                );
            }
            body.push_str("])");
        }
        Body::Tuple(arity) => {
            body.push_str("::serde::json_model::Value::Array(::std::vec![");
            for i in 0..*arity {
                let _ = write!(body, "::serde::Serialize::to_json_value(&self.{i}),");
            }
            body.push_str("])");
        }
        Body::Enum(variants) => {
            body.push_str("match self {");
            for v in &variants[..] {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vname} => ::serde::json_model::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname}({}) => ::serde::json_model::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::json_model::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let _ = write!(
                            body,
                            "{name}::{vname} {{ {} }} => ::serde::json_model::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::json_model::Value::Object(::std::vec![{}]))]),",
                            fields.join(", "),
                            fields
                                .iter()
                                .map(|f| format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_json_value({f}))"
                                ))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_json_value(&self) -> ::serde::json_model::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}"),
        Body::Named(fields) => {
            let mut s = String::from(
                "{ let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"an object\", __v))?; \
                 ::std::result::Result::Ok(Self {",
            );
            for f in fields {
                let _ = write!(
                    s,
                    "{f}: ::serde::Deserialize::from_json_value(::serde::get_field(__obj, \"{f}\")?)?,"
                );
            }
            s.push_str("}) }");
            s
        }
        Body::Tuple(arity) => {
            let mut s = format!(
                "{{ let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"an array\", __v))?; \
                 if __arr.len() != {arity} {{ return ::std::result::Result::Err(\
                 ::serde::DeError(::std::format!(\
                 \"expected a {arity}-element array, got {{}}\", __arr.len()))); }} \
                 ::std::result::Result::Ok(Self("
            );
            for i in 0..*arity {
                let _ = write!(s, "::serde::Deserialize::from_json_value(&__arr[{i}])?,");
            }
            s.push_str(")) }");
            s
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let mut fields = String::new();
                        for i in 0..*arity {
                            let _ = write!(
                                fields,
                                "::serde::Deserialize::from_json_value(&__arr[{i}])?,"
                            );
                        }
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => {{ let __arr = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"an array\", __payload))?; \
                             if __arr.len() != {arity} {{ return ::std::result::Result::Err(\
                             ::serde::DeError(::std::format!(\
                             \"variant {vname} expects {arity} values, got {{}}\", __arr.len()))); }} \
                             ::std::result::Result::Ok({name}::{vname}({fields})) }}"
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let _ = write!(
                                inits,
                                "{f}: ::serde::Deserialize::from_json_value(\
                                 ::serde::get_field(__obj, \"{f}\")?)?,"
                            );
                        }
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => {{ let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"an object\", __payload))?; \
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }}"
                        );
                    }
                }
            }
            format!(
                "match __v {{ \
                 ::serde::json_model::Value::String(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{__other}}` for {name}\"))), }}, \
                 ::serde::json_model::Value::Object(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __payload) = &__entries[0]; \
                 match __tag.as_str() {{ \
                 {tagged_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{__other}}` for {name}\"))), }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"a {name} variant\", __other)), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_json_value(__v: &::serde::json_model::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
