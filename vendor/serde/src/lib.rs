//! Minimal vendored stand-in for the `serde` API surface used by the
//! `pkgrec` workspace: the [`Serialize`] / [`Deserialize`] traits plus the
//! derive macros (via the sibling `serde_derive` stub, behind the usual
//! `derive` feature).
//!
//! Unlike real serde there is no generic data model: serialization goes
//! straight to a JSON-shaped [`json_model::Value`], which is all the
//! workspace's `serde_json` usage needs.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The JSON-shaped value tree shared with the vendored `serde_json`.
pub mod json_model {
    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A JSON integer, kept lossless (JSON integers are arbitrary
        /// precision; `i128` covers every Rust integer type so `u64`
        /// values above 2^53 survive a round trip intact).
        Int(i128),
        /// Any other JSON number (stored as `f64`).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The boolean payload, if this is a `Bool`.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The numeric payload, if this is a `Number` or an `Int` (the
        /// latter converted, possibly rounding above 2^53 — use
        /// [`Value::as_i128`] where exactness matters).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The exact integer payload: an `Int` verbatim, or a `Number`
        /// that happens to be integral and in range.
        pub fn as_i128(&self) -> Option<i128> {
            match self {
                Value::Int(i) => Some(*i),
                Value::Number(n)
                    if n.fract() == 0.0 && *n >= i128::MIN as f64 && *n <= i128::MAX as f64 =>
                {
                    Some(*n as i128)
                }
                _ => None,
            }
        }

        /// The string payload, if this is a `String`.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The element list, if this is an `Array`.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The entry list, if this is an `Object`.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// The value under `key`, if this is an `Object` containing it.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }
}

use json_model::Value;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a value of the wrong JSON shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError(format!("expected {what}, got {shape}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in an object's entry list (derive-macro support).
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the JSON value tree.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a boolean", v))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                // `i128` holds every Rust integer type exactly; going
                // through `f64` here would silently corrupt `u64`/`i64`
                // values above 2^53.
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| DeError(format!(
                        "integer {i} is out of range for {}", stringify!($t)
                    ))),
                    // Reject fractional or out-of-range values instead of
                    // letting `as` silently truncate/saturate (matches real
                    // serde).
                    Value::Number(n) => {
                        if n.fract() != 0.0 || *n < <$t>::MIN as f64 || *n > <$t>::MAX as f64 {
                            return Err(DeError(format!(
                                "number {n} is not a valid {}", stringify!($t)
                            )));
                        }
                        Ok(*n as $t)
                    }
                    other => Err(DeError::expected("a number", other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::expected("a number", v))?;
                Ok(n as $t)
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError("expected a single-character string".into())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("an array", v))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_json_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected an array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(DeError(format!(
                        "expected a {arity}-element array, got {}", items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("an object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("an object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_get_looks_up_object_keys() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("a"), None);
        assert_eq!(Value::Array(vec![]).get("a"), None);
    }

    #[test]
    fn integers_round_trip_losslessly_above_2_pow_53() {
        // `u64` seeds above 2^53 must survive the value tree exactly; a
        // detour through `f64` would corrupt the low bits silently.
        for x in [u64::MAX, (1u64 << 53) + 1, 0x9e37_79b9_7f4a_7c15] {
            let v = x.to_json_value();
            assert_eq!(v, Value::Int(x as i128));
            assert_eq!(u64::from_json_value(&v).unwrap(), x);
        }
        let v = i64::MIN.to_json_value();
        assert_eq!(i64::from_json_value(&v).unwrap(), i64::MIN);
    }

    #[test]
    fn int_deserialisation_checks_range_and_floats_accept_ints() {
        assert!(u8::from_json_value(&Value::Int(256)).is_err());
        assert!(u64::from_json_value(&Value::Int(-1)).is_err());
        assert_eq!(u8::from_json_value(&Value::Int(255)).unwrap(), 255);
        // Integral `Number`s are still accepted (pre-`Int` journal frames).
        assert_eq!(u64::from_json_value(&Value::Number(12.0)).unwrap(), 12);
        assert!(u64::from_json_value(&Value::Number(12.5)).is_err());
        // Float fields tolerate values parsed as integers.
        assert_eq!(f64::from_json_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(Value::Int(7).as_i128(), Some(7));
        assert_eq!(Value::Number(7.0).as_i128(), Some(7));
        assert_eq!(Value::Number(7.5).as_i128(), None);
    }

    #[test]
    fn arc_serialises_transparently_and_deserialises_fresh() {
        let shared = std::sync::Arc::new(vec![1u64, 2, 3]);
        let value = shared.to_json_value();
        assert_eq!(value, vec![1u64, 2, 3].to_json_value());
        let back: std::sync::Arc<Vec<u64>> = Deserialize::from_json_value(&value).unwrap();
        assert_eq!(*back, *shared);
        assert!(<std::sync::Arc<Vec<u64>> as Deserialize>::from_json_value(&Value::Null).is_err());
    }
}
