//! Playlist scenario comparing the three ranking semantics (EXP, TKP, MPO) on
//! the same learned preference state — the Section 2.2 discussion made
//! concrete: under uncertainty about the listener's taste, the "best top-k
//! list" genuinely depends on the semantics you pick.
//!
//! ```text
//! cargo run -p pkgrec-examples --bin playlist_semantics
//! ```

use pkgrec_core::prelude::*;
use pkgrec_examples::{print_recommendations, sequential_names};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(7);

    // Thirty songs described by (duration, popularity, energy), all in [0, 1].
    let rows: Vec<Vec<f64>> = (0..30)
        .map(|_| {
            vec![
                rng.gen_range(0.1..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    let catalog = Catalog::new(
        vec!["duration".into(), "popularity".into(), "energy".into()],
        rows,
    )?;
    let names = sequential_names("Song", catalog.len());

    // A playlist's duration is the sum of its songs, popularity and energy are
    // averaged; playlists hold up to four songs.
    let profile = Profile::new(vec![AggregateFn::Sum, AggregateFn::Avg, AggregateFn::Avg]);

    // One engine per semantics, all fed exactly the same clicks.
    let semantics = [
        ("EXP — highest expected utility", RankingSemantics::Exp),
        (
            "TKP — most often in the per-sample top-3",
            RankingSemantics::Tkp { sigma: 3 },
        ),
        (
            "MPO — most probable complete top-3 list",
            RankingSemantics::Mpo,
        ),
    ];
    let listener_weights = vec![-0.3, 0.5, 0.8]; // shorter, popular, energetic

    for (label, sem) in semantics {
        let mut engine = RecommenderEngine::builder(catalog.clone(), profile.clone())
            .max_package_size(4)
            .k(3)
            .num_random(3)
            .num_samples(120)
            .semantics(sem)
            .build()?;
        let listener = SimulatedUser::new(LinearUtility::new(
            engine.context().clone(),
            listener_weights.clone(),
        )?);
        // Three rounds of identical, deterministic feedback per engine.
        let mut session_rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let shown = engine.present(&mut session_rng)?;
            let choice = listener.choose(&catalog, &shown, &mut session_rng)?;
            engine.record_feedback(&shown, Feedback::Click { index: choice }, &mut session_rng)?;
        }
        let recs = engine.recommend(&mut session_rng)?;
        print_recommendations(label, &catalog, &names, &recs);
    }

    println!(
        "All three lists are defensible; the paper's point is that the framework supports\n\
         whichever semantics the application picks, on top of the same sample pool."
    );
    Ok(())
}
