//! Fantasy-lineup scenario over the (synthetic) NBA career-statistics dataset
//! used in the paper's experiments: learn a scout's hidden taste for lineups
//! of up to five players through clicks, then show the lineups the system
//! recommends.
//!
//! ```text
//! cargo run --release -p pkgrec-examples --bin nba_fantasy
//! ```

use pkgrec_core::prelude::*;
use pkgrec_data::nba::{synthetic_nba_sized, NBA_FEATURE_NAMES};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2009);

    // A scaled-down roster (500 players, 6 features) keeps the example snappy;
    // swap in `synthetic_nba(&mut rng)` for the full 3705-player catalog.
    let dataset = synthetic_nba_sized(500, &mut rng).expect("synthetic NBA generation succeeds");
    let normalized = dataset.normalized();
    let features = 6usize;
    let rows: Vec<Vec<f64>> = normalized
        .rows()
        .iter()
        .map(|r| r[..features].to_vec())
        .collect();
    let catalog = Catalog::new(
        NBA_FEATURE_NAMES[..features]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    )?;
    println!(
        "Roster: {} players, features: {}",
        catalog.len(),
        catalog.feature_names().join(", ")
    );

    // Lineup quality: total games/minutes/points (sum) and per-game style
    // features (avg) — the experiment profile of the benchmark harness.
    let profile = Profile::new(vec![
        AggregateFn::Sum, // games
        AggregateFn::Avg, // minutes
        AggregateFn::Sum, // points
        AggregateFn::Avg, // rebounds
        AggregateFn::Sum, // assists
        AggregateFn::Avg, // steals
    ]);

    // The scout's hidden taste: scoring and assists matter most, longevity a
    // little, rebounds are slightly disliked (space-and-pace scouting).
    let hidden_weights = vec![0.2, 0.1, 0.9, -0.2, 0.6, 0.3];

    let mut engine = RecommenderEngine::builder(catalog.clone(), profile)
        .max_package_size(5)
        .k(5)
        .num_random(5)
        .num_samples(150)
        .semantics(RankingSemantics::Exp)
        .sampler(SamplerKind::mcmc())
        .build()?;
    let scout = SimulatedUser::new(LinearUtility::new(
        engine.context().clone(),
        hidden_weights,
    )?);

    let report = run_elicitation(
        &mut engine,
        &scout,
        ElicitationConfig {
            max_rounds: 15,
            stable_rounds: 2,
        },
        &mut rng,
    )?;
    println!(
        "The system needed {} clicks to stabilise (converged: {}, precision vs hidden taste: {:.2}).\n",
        report.clicks, report.converged, report.precision
    );

    // The scouting session survives a process restart: snapshot it to JSON,
    // restore, and the resumed session recommends exactly the same lineups.
    let json = serde_json::to_string(&engine.snapshot()).expect("snapshots serialise");
    let mut resumed =
        RecommenderEngine::restore(serde_json::from_str(&json).expect("snapshots deserialise"))?;
    println!(
        "Snapshot round trip: {} bytes of JSON, restored session at round {}.",
        json.len(),
        resumed.rounds()
    );
    let live = engine.recommend(&mut rng)?;
    let restored = resumed.recommend(&mut StdRng::seed_from_u64(0))?;
    assert_eq!(live, restored, "a resumed session recommends identically");

    println!("Recommended lineups:");
    for (rank, ranked) in live.iter().enumerate() {
        let players: Vec<String> = ranked
            .package
            .items()
            .iter()
            .map(|&id| format!("player#{id}"))
            .collect();
        println!(
            "  {}. score {:.4}: {}",
            rank + 1,
            ranked.score,
            players.join(", ")
        );
    }

    println!("\nGround-truth best lineups under the scout's hidden utility:");
    for (package, utility) in &scout.ground_truth_top_k(&catalog, 5)?.packages {
        let players: Vec<String> = package
            .items()
            .iter()
            .map(|&id| format!("player#{id}"))
            .collect();
        println!("  utility {:.4}: {}", utility, players.join(", "));
    }
    Ok(())
}
