//! The network front door, end to end: start a `pkgrec-server` over a
//! durable store on an ephemeral loopback port, drive an elicitation
//! session entirely over the wire, shut the server down gracefully, then
//! start a **new** server over the same journal directory and keep
//! serving the same session — the recommendation after the restart is
//! byte-for-byte the one the first server would have given.
//!
//! Everything a frontend needs crosses the wire as CRC-framed JSON:
//! create, present, feedback, recommend, snapshot, stats, sync.  The
//! server is just a sharded request loop around `SessionStore`, so every
//! durability and determinism guarantee of the store holds verbatim at
//! the network boundary.
//!
//! ```text
//! cargo run --release -p pkgrec-examples --bin server_demo
//! ```

use pkgrec_core::prelude::*;
use pkgrec_serve::{
    user_rng, DurabilityConfig, RecommenderSpec, SessionConfig, SessionStore, StoreConfig,
};
use pkgrec_server::loadgen::build_catalog;
use pkgrec_server::{Client, Server, ServerConfig};

const ROUNDS: usize = 3;

fn main() -> Result<()> {
    // A small storefront catalog: 40 products with (price, rating).
    let catalog = build_catalog(2014, 40)?;
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, 2)?;

    // The durable root: the journal under this directory IS the database,
    // and reopening it under a fresh server IS the recovery path.
    let dir = std::env::temp_dir().join(format!("pkgrec-server-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SessionStore::open_with(
        StoreConfig {
            shards: 2,
            capacity_per_shard: 4,
        },
        DurabilityConfig::at(&dir),
    )?;

    // ---- serve: bind an ephemeral port, run the loop on its own thread ---
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())
        .map_err(|e| CoreError::io(e.kind(), format!("bind: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CoreError::io(e.kind(), format!("local addr: {e}")))?;
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = store;
        let report = server.serve(&mut store)?;
        Ok::<_, CoreError>((store, report))
    });
    println!(
        "server listening on {addr}, journaling under {}",
        dir.display()
    );

    // ---- elicit: one session, driven entirely over the wire --------------
    let mut client = Client::connect(addr)?;
    let session = client.create(SessionConfig {
        catalog: catalog.clone(),
        profile: profile.clone(),
        max_package_size: 2,
        spec: RecommenderSpec::Engine(EngineConfig {
            k: 3,
            num_random: 2,
            num_samples: 30,
            ..EngineConfig::default()
        }),
        seed: 42,
    })?;

    // The hidden shopper behind the session: clicks whatever its secret
    // linear taste scores highest among the shown packages.
    let weights = random_ground_truth_weights(context.dim(), &mut user_rng(42));
    let user = SimulatedUser::new(LinearUtility::new(context, weights)?);
    let mut choice_rng = user_rng(0x5ee5);

    for round in 1..=ROUNDS {
        let shown = client.present(session)?;
        let choice = user.choose(&catalog, &shown, &mut choice_rng)?;
        let learned = client.feedback(session, Feedback::Click { index: choice })?;
        println!(
            "round {round}: {shown_count} packages shown over the wire, clicked #{choice} \
             ({learned} preferences learned)",
            shown_count = shown.len(),
        );
    }
    let before = client.recommend(session)?;
    println!(
        "top recommendation before restart: score {:.4}, items {:?}",
        before[0].score,
        before[0].package.items(),
    );

    // ---- restart: graceful shutdown, then a new server on the same log ---
    client.sync()?;
    control.shutdown();
    let (store, report) = handle.join().expect("server thread join")?;
    println!(
        "server stopped ({} connections, {} requests served); store dropped",
        report.connections, report.requests,
    );
    drop(store); // release the journal directory like a real process exit

    let reborn = SessionStore::open(
        &dir,
        StoreConfig {
            shards: 2,
            capacity_per_shard: 4,
        },
    )?;
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())
        .map_err(|e| CoreError::io(e.kind(), format!("rebind: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CoreError::io(e.kind(), format!("local addr: {e}")))?;
    let control = server.control();
    let handle = std::thread::spawn(move || {
        let mut store = reborn;
        let report = server.serve(&mut store)?;
        Ok::<_, CoreError>((store, report))
    });

    // The same session id, served by a different process image on a
    // different port, recommends byte-for-byte the same packages.
    let mut client = Client::connect(addr)?;
    let after = client.recommend(session)?;
    assert_eq!(
        serde_json::to_string(&before).ok(),
        serde_json::to_string(&after).ok(),
        "recovered server diverged from the killed one"
    );
    println!("new server on {addr} recommends identically after recovery");

    // And the session is still live: elicitation continues where it left off.
    let shown = client.present(session)?;
    let choice = user.choose(&catalog, &shown, &mut choice_rng)?;
    client.feedback(session, Feedback::Click { index: choice })?;
    let final_ranked = client.recommend(session)?;
    let (sessions, stats) = client.stats()?;
    println!(
        "one more round after the restart: top score {:.4} \
         ({sessions} sessions live, {} journal events across restarts)",
        final_ranked[0].score, stats.journal_events,
    );

    control.shutdown();
    let (store, _) = handle.join().expect("server thread join")?;
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    println!("the wire is just a window onto the log — restarts are invisible");
    Ok(())
}
