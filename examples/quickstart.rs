//! Quickstart: recommend packages from a ten-item catalog and learn from a
//! couple of simulated clicks.
//!
//! ```text
//! cargo run -p pkgrec-examples --bin quickstart
//! ```

use pkgrec_core::prelude::*;
use pkgrec_examples::{print_recommendations, sequential_names};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<()> {
    // Ten items with two features each: (price, rating), both already scaled
    // to [0, 1].  A package's price is the sum of its items' prices; its
    // quality is the average rating (Figure 1 of the paper).
    let catalog = Catalog::new(
        vec!["price".into(), "rating".into()],
        vec![
            vec![0.60, 0.20],
            vec![0.40, 0.40],
            vec![0.20, 0.40],
            vec![0.90, 0.80],
            vec![0.30, 0.70],
            vec![0.70, 0.10],
            vec![0.10, 0.30],
            vec![0.50, 0.90],
            vec![0.80, 0.50],
            vec![0.20, 0.80],
        ],
    )?;
    let names = sequential_names("Item", catalog.len());

    // Packages hold up to three items; preferences over (total price, average
    // rating) are captured by a hidden linear utility the engine learns.
    let mut engine = RecommenderEngine::builder(catalog.clone(), Profile::cost_quality())
        .max_package_size(3)
        .k(3)
        .num_random(3)
        .num_samples(100)
        .semantics(RankingSemantics::Exp)
        .build()?;
    let mut rng = StdRng::seed_from_u64(42);

    // Before any feedback the engine only knows its prior.
    let initial = engine.recommend(&mut rng)?;
    print_recommendations(
        "Top packages before any feedback:",
        &catalog,
        &names,
        &initial,
    );

    // Simulate three rounds of interaction: the user always clicks the shown
    // package with the lowest total price (a thrifty user).  Feedback names
    // the clicked package by its index in the shown list.
    let price = |p: &Package| -> f64 {
        p.items()
            .iter()
            .map(|&i| catalog.item_unchecked(i)[0])
            .sum()
    };
    for round in 1..=3 {
        let shown = engine.present(&mut rng)?;
        let cheapest = (0..shown.len())
            .min_by(|&a, &b| {
                price(&shown[a])
                    .partial_cmp(&price(&shown[b]))
                    .expect("prices are finite")
            })
            .expect("at least one package is shown");
        let added =
            engine.record_feedback(&shown, Feedback::Click { index: cheapest }, &mut rng)?;
        println!(
            "round {round}: clicked {}, learned {added} new preferences",
            shown[cheapest]
        );
    }
    println!();

    let learned = engine.recommend(&mut rng)?;
    print_recommendations(
        "Top packages after three thrifty clicks:",
        &catalog,
        &names,
        &learned,
    );
    println!(
        "The engine now holds {} preferences over {} packages and keeps {} weight samples.",
        engine.preferences().len(),
        engine.preferences().num_packages(),
        engine.pool().len()
    );
    Ok(())
}
