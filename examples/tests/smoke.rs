//! Manifest smoke test: the shared example helpers format packages correctly.

use pkgrec_core::{Catalog, Package};
use pkgrec_examples::{describe_package, sequential_names};

#[test]
fn example_helpers_smoke() {
    let catalog =
        Catalog::from_rows(vec![vec![0.25, 0.75], vec![0.5, 0.5]]).expect("valid catalog");
    let names = sequential_names("Item", 2);
    let package = Package::new(vec![0, 1]).expect("valid package");
    let text = describe_package(&catalog, &names, &package);
    assert!(text.contains("Item 1"));
    assert!(text.contains("0.75"));
}
