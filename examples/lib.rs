//! Shared helpers for the runnable `pkgrec` examples.
//!
//! Each example is a standalone binary (see `Cargo.toml`); this small library
//! holds the formatting helpers they share so the examples themselves stay
//! focused on the API they demonstrate.

use pkgrec_core::{Catalog, Package, RankedPackage};

/// Pretty-prints a package as a list of item names with their feature values.
pub fn describe_package(catalog: &Catalog, names: &[String], package: &Package) -> String {
    let members: Vec<String> = package
        .items()
        .iter()
        .map(|&id| {
            let features = catalog.item_unchecked(id);
            let label = names
                .get(id)
                .cloned()
                .unwrap_or_else(|| format!("item {id}"));
            let values: Vec<String> = features.iter().map(|v| format!("{v:.2}")).collect();
            format!("{label} ({})", values.join(", "))
        })
        .collect();
    members.join(" + ")
}

/// Prints a ranked recommendation list with scores.
pub fn print_recommendations(
    title: &str,
    catalog: &Catalog,
    names: &[String],
    recommendations: &[RankedPackage],
) {
    println!("{title}");
    for (rank, r) in recommendations.iter().enumerate() {
        println!(
            "  {}. score {:>7.4}  {}",
            rank + 1,
            r.score,
            describe_package(catalog, names, &r.package)
        );
    }
    println!();
}

/// Generates simple sequential item names with a prefix ("Book 1", "Book 2", …).
pub fn sequential_names(prefix: &str, count: usize) -> Vec<String> {
    (1..=count).map(|i| format!("{prefix} {i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_package_lists_members() {
        let catalog = Catalog::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let names = sequential_names("Item", 2);
        let p = Package::new(vec![0, 1]).unwrap();
        let text = describe_package(&catalog, &names, &p);
        assert!(text.contains("Item 1"));
        assert!(text.contains("Item 2"));
        assert!(text.contains("3.00"));
    }

    #[test]
    fn sequential_names_are_one_based() {
        let names = sequential_names("Song", 3);
        assert_eq!(names, vec!["Song 1", "Song 2", "Song 3"]);
    }
}
