//! Serving many elicitation sessions on top of a durable journal: create
//! 100 sessions in a store whose log is the database, kill the process
//! image without a graceful shutdown, reopen the directory, and verify the
//! recovered store recommends byte-for-byte what the killed one would have.
//!
//! The store owns the session lifecycle the way a production frontend
//! would need it to: sessions are addressed by id, spill to snapshot
//! checkpoints under memory pressure, rehydrate transparently — and
//! survive a real restart, because every event lands in an append-only
//! segmented journal (catalogs interned, records CRC-framed) before it
//! mutates memory.  Compaction then folds each session's history into its
//! latest checkpoint.
//!
//! ```text
//! cargo run --release -p pkgrec-examples --bin serving
//! ```

use std::time::Instant;

use pkgrec_baselines::{BaselineSpec, EmRefitConfig, FeatureDirection};
use pkgrec_core::prelude::*;
use pkgrec_serve::{
    user_rng, DurabilityConfig, RecommenderSpec, SessionConfig, SessionId, SessionStore,
    StoreConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SESSIONS: u64 = 100;

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2014);

    // A small storefront: 60 products with (price, rating).
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|_| {
            let price: f64 = rng.gen_range(0.05..1.0f64).powf(1.3);
            let rating: f64 = rng.gen_range(0.3..1.0);
            vec![price, rating]
        })
        .collect();
    // One Arc-shared catalog serves the whole fleet in memory; on disk the
    // journal interns it too, so the 60 rows are written once per shard —
    // not once per session.
    let catalog = std::sync::Arc::new(Catalog::from_rows(rows)?);
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, 2)?;

    // The durable root: segment files + manifest live here, and reopening
    // this directory IS the recovery path.
    let dir = std::env::temp_dir().join(format!("pkgrec-serving-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig {
        shards: 4,
        capacity_per_shard: 10,
    };
    // Write-through group commit (flush_every_ops: 1): every event reaches
    // the filesystem before the operation returns.  Production would batch.
    let mut store = SessionStore::open_with(
        config,
        DurabilityConfig {
            flush_every_ops: 1,
            ..DurabilityConfig::at(&dir)
        },
    )?;

    // ---- create: 100 sessions, a mixed fleet -----------------------------
    let mut ids: Vec<SessionId> = Vec::new();
    let mut users: Vec<SimulatedUser> = Vec::new();
    for i in 0..SESSIONS {
        let spec = match i % 4 {
            2 => RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
                k: 3,
                num_random: 2,
                num_samples: 25,
                samples_per_refit: 50,
                ..EmRefitConfig::default()
            })),
            3 => RecommenderSpec::Baseline(BaselineSpec::Skyline {
                cardinality: 2,
                directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                k: 3,
            }),
            _ => RecommenderSpec::Engine(EngineConfig {
                k: 3,
                num_random: 2,
                num_samples: 30,
                ..EngineConfig::default()
            }),
        };
        let id = store.create(SessionConfig {
            catalog: catalog.clone(),
            profile: profile.clone(),
            max_package_size: 2,
            spec,
            seed: 9_000 + i,
        })?;
        // Each session belongs to a user with a hidden taste.
        let weights = random_ground_truth_weights(context.dim(), &mut rng);
        users.push(SimulatedUser::new(LinearUtility::new(
            context.clone(),
            weights,
        )?));
        ids.push(id);
    }
    println!(
        "created {} sessions across {} shards (≤10 live per shard), journaled under {}",
        store.len(),
        store.shard_count(),
        dir.display()
    );

    // ---- feedback: one presented round + click per session ---------------
    for (id, user) in ids.iter().zip(users.iter()) {
        let shown = store.present(*id)?;
        let choice = user.choose(&catalog, &shown, &mut user_rng(id.0))?;
        store.feedback(*id, Feedback::Click { index: choice })?;
    }
    let stats = store.stats();
    println!(
        "after one feedback round: {} hits, {} evictions, {} snapshot checkpoints, \
         {} segments holding {:.1} KB ({} group commits)",
        stats.hits,
        stats.evictions,
        stats.snapshots,
        stats.segments_written,
        store.durable_bytes()? as f64 / 1024.0,
        stats.group_commits,
    );

    // ---- kill: no graceful shutdown --------------------------------------
    // Remember what a handful of probe sessions recommend, fsync the log
    // (the one durability point a careful server controls), then drop the
    // store without running a single destructor — the moral equivalent of
    // `kill -9`.
    let mut probes: Vec<(SessionId, Vec<RankedPackage>)> = Vec::new();
    for id in ids.iter().step_by(17) {
        probes.push((*id, store.recommend(*id)?));
    }
    store.sync()?;
    std::mem::forget(store);
    println!(
        "killed the store mid-flight ({} probe sessions remembered)",
        probes.len()
    );

    // ---- recover: reopen the directory -----------------------------------
    let start = Instant::now();
    let mut reborn = SessionStore::open(&dir, config)?;
    let recovery = start.elapsed();
    let reborn_stats = reborn.stats();
    println!(
        "reopened in {:.2} ms: {} sessions rebuilt from segments ({} journal-replay restores)",
        recovery.as_secs_f64() * 1e3,
        reborn.len(),
        reborn_stats.recovery_replays,
    );
    assert_eq!(reborn.len() as u64, SESSIONS, "every session must survive");
    for (id, expected) in &probes {
        let recovered = reborn.recommend(*id)?;
        assert_eq!(&recovered, expected, "recovery diverged for {id}");
    }
    println!(
        "{} probe sessions recommend identically before and after the kill",
        probes.len()
    );

    // ---- compact: fold history into checkpoints --------------------------
    let before = reborn.durable_bytes()?;
    let outcome = reborn.compact()?;
    let after = reborn.durable_bytes()?;
    println!(
        "compaction: {:.1} KB -> {:.1} KB ({} checkpoints written, {} events dropped, \
         {:.1} KB reclaimed)",
        before as f64 / 1024.0,
        after as f64 / 1024.0,
        outcome.checkpoints_written,
        outcome.events_dropped,
        outcome.bytes_reclaimed as f64 / 1024.0,
    );
    // The compacted store still serves every probe identically.
    for (id, expected) in &probes {
        assert_eq!(
            &reborn.recommend(*id)?,
            expected,
            "compaction diverged for {id}"
        );
    }
    println!("compacted store still recommends identically — the log IS the database");

    drop(reborn);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
