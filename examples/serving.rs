//! Serving many elicitation sessions at once: the `pkgrec-serve` session
//! store end to end — create 100 sessions, give each a round of feedback,
//! evict them all, and rebuild the whole store from its journal alone.
//!
//! The store owns the session lifecycle the way a production frontend would
//! need it to: sessions are addressed by id, spill to snapshots under
//! memory pressure, rehydrate transparently, and survive a "process
//! restart" because the append-only journal is their durable form.
//!
//! ```text
//! cargo run --release -p pkgrec-examples --bin serving
//! ```

use pkgrec_baselines::{BaselineSpec, EmRefitConfig, FeatureDirection};
use pkgrec_core::prelude::*;
use pkgrec_serve::{
    user_rng, RecommenderSpec, SessionConfig, SessionId, SessionStore, StoreConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SESSIONS: u64 = 100;

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2014);

    // A small storefront: 60 products with (price, rating).
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|_| {
            let price: f64 = rng.gen_range(0.05..1.0f64).powf(1.3);
            let rating: f64 = rng.gen_range(0.3..1.0);
            vec![price, rating]
        })
        .collect();
    // One Arc-shared catalog serves the whole fleet (each session config
    // clones a pointer, not the 60 rows).
    let catalog = std::sync::Arc::new(Catalog::from_rows(rows)?);
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, 2)?;

    // A store with 4 shards, each keeping at most 10 sessions live: with 100
    // sessions the LRU spill path is exercised continuously.
    let mut store = SessionStore::new(StoreConfig {
        shards: 4,
        capacity_per_shard: 10,
    })?;

    // ---- create: 100 sessions, a mixed fleet -----------------------------
    let mut ids: Vec<SessionId> = Vec::new();
    let mut users: Vec<SimulatedUser> = Vec::new();
    for i in 0..SESSIONS {
        let spec = match i % 4 {
            2 => RecommenderSpec::Baseline(BaselineSpec::EmRefit(EmRefitConfig {
                k: 3,
                num_random: 2,
                num_samples: 25,
                samples_per_refit: 50,
                ..EmRefitConfig::default()
            })),
            3 => RecommenderSpec::Baseline(BaselineSpec::Skyline {
                cardinality: 2,
                directions: vec![FeatureDirection::Minimize, FeatureDirection::Maximize],
                k: 3,
            }),
            _ => RecommenderSpec::Engine(EngineConfig {
                k: 3,
                num_random: 2,
                num_samples: 30,
                ..EngineConfig::default()
            }),
        };
        let id = store.create(SessionConfig {
            catalog: catalog.clone(),
            profile: profile.clone(),
            max_package_size: 2,
            spec,
            seed: 9_000 + i,
        })?;
        // Each session belongs to a user with a hidden taste.
        let weights = random_ground_truth_weights(context.dim(), &mut rng);
        users.push(SimulatedUser::new(LinearUtility::new(
            context.clone(),
            weights,
        )?));
        ids.push(id);
    }
    println!(
        "created {} sessions across {} shards (≤10 live per shard)",
        store.len(),
        store.shard_count()
    );

    // ---- feedback: one presented round + click per session ---------------
    for (id, user) in ids.iter().zip(users.iter()) {
        let shown = store.present(*id)?;
        let choice = user.choose(&catalog, &shown, &mut user_rng(id.0))?;
        store.feedback(*id, Feedback::Click { index: choice })?;
    }
    let stats = store.stats();
    println!(
        "after one feedback round: {} hits, {} evictions, {} snapshot checkpoints, {} journal-replay restores",
        stats.hits, stats.evictions, stats.snapshots, stats.restores
    );

    // ---- evict: spill every session explicitly ---------------------------
    for id in &ids {
        store.evict(*id)?;
    }
    let live = ids
        .iter()
        .filter(|id| store.is_live(**id).unwrap_or(false))
        .count();
    println!("after evicting everything: {live} sessions live in memory (all state in journals)");

    // A spilled session is still addressable — the store rehydrates it.
    let probe = ids[0];
    let recs_before = store.recommend(probe)?;
    println!(
        "touching {probe} rehydrated it transparently: top package score {:.4}",
        recs_before[0].score
    );

    // ---- restore-from-journal: a brand-new store, different sharding -----
    let journal = store.export_journal();
    println!(
        "exported journal: {} events across {} sessions",
        journal.len(),
        SESSIONS
    );
    let mut reborn = SessionStore::from_journal(
        StoreConfig {
            shards: 8,
            capacity_per_shard: 10,
        },
        &journal,
    )?;
    // Every adopted session replays bit-identically; spot-check a handful
    // of engine sessions by comparing their next recommendation.
    let mut checked = 0usize;
    for id in ids.iter().step_by(17) {
        let original = store.recommend(*id)?;
        let adopted = reborn.recommend(*id)?;
        assert_eq!(original, adopted, "journal replay diverged for {id}");
        checked += 1;
    }
    println!(
        "rebuilt a fresh {}-shard store from the journal alone; {} spot-checked sessions \
         recommend identically",
        reborn.shard_count(),
        checked
    );
    let reborn_stats = reborn.stats();
    println!(
        "rebuild cost: {} journal-replay restores, {} evictions while rehydrating",
        reborn_stats.restores, reborn_stats.evictions
    );
    Ok(())
}
