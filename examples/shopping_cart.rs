//! Shopping-cart scenario from the paper's introduction: assembling a cart of
//! books where the total cost should be low and the average rating high, and
//! comparing the elicitation-based recommender against the two baselines the
//! paper criticises (all skyline packages, hard-constraint optimisation).
//!
//! The comparison runs every system through the *same* generic session loop:
//! `run_elicitation` takes `&mut dyn Recommender`, so the engine, the
//! EM-refit baseline and the hard-constraint baseline are interchangeable.
//!
//! ```text
//! cargo run -p pkgrec-examples --bin shopping_cart
//! ```

use pkgrec_baselines::skyline::FeatureDirection;
use pkgrec_baselines::{
    hard_constraint_top_k, skyline_packages, BudgetConstraint, EmRefitConfig, EmRefitSession,
    HardConstraintSession,
};
use pkgrec_core::prelude::*;
use pkgrec_examples::{describe_package, print_recommendations, sequential_names};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2014);

    // Forty books with (price, rating); prices skew low, ratings cluster high.
    let rows: Vec<Vec<f64>> = (0..40)
        .map(|_| {
            let price: f64 = rng.gen_range(0.05..1.0f64).powf(1.3);
            let rating: f64 = rng.gen_range(0.3..1.0);
            vec![price, rating]
        })
        .collect();
    let catalog = Catalog::new(vec!["price".into(), "rating".into()], rows)?;
    let names = sequential_names("Book", catalog.len());
    let profile = Profile::cost_quality();
    let context = AggregationContext::new(profile.clone(), &catalog, 4)?;

    // ----- Baseline 1: all skyline carts of three books -------------------
    let directions = [FeatureDirection::Minimize, FeatureDirection::Maximize];
    let (skyline, stats) = skyline_packages(&context, &catalog, 3, &directions)?;
    println!(
        "Skyline baseline: {} of {} three-book carts are Pareto-optimal — far too many to present.",
        stats.skyline_size, stats.candidates
    );
    for (package, vector) in skyline.iter().take(5) {
        println!(
            "  e.g. cost {:.2}, quality {:.2}: {}",
            vector[0],
            vector[1],
            describe_package(&catalog, &names, package)
        );
    }
    println!("  … ({} more)\n", stats.skyline_size.saturating_sub(5));

    // ----- Baseline 2: hard budget on the cart cost ------------------------
    for budget in [0.2, 0.8] {
        let (top, feasible) = hard_constraint_top_k(
            &context,
            &catalog,
            1,
            &[BudgetConstraint {
                feature: 0,
                max_value: budget,
            }],
            3,
        )?;
        println!(
            "Hard-constraint baseline with cost budget {budget:.1}: {feasible} feasible carts"
        );
        for (package, rating) in &top {
            println!(
                "  rating {:.2}: {}",
                rating,
                describe_package(&catalog, &names, package)
            );
        }
    }
    println!("  → too low a budget hides the best carts, too high a budget floods the user.\n");

    // ----- The paper's approach vs the baselines, one generic loop ---------
    // A hidden user taste: price matters a bit more than quality.  Every
    // system below is driven by the same `run_elicitation` session driver
    // through `&mut dyn Recommender`.
    let ground_truth = LinearUtility::new(context.clone(), vec![-0.6, 0.4])?;
    let user = SimulatedUser::new(ground_truth);
    let mut engine = RecommenderEngine::builder(catalog.clone(), profile.clone())
        .max_package_size(4)
        .k(5)
        .num_random(5)
        .num_samples(150)
        .semantics(RankingSemantics::Exp)
        .build()?;
    let mut em_refit = EmRefitSession::new(
        catalog.clone(),
        profile.clone(),
        4,
        EmRefitConfig {
            k: 5,
            num_random: 5,
            num_samples: 150,
            samples_per_refit: 150,
            ..EmRefitConfig::default()
        },
    )?;
    let mut hard = HardConstraintSession::new(
        catalog.clone(),
        profile.clone(),
        4,
        1,
        vec![BudgetConstraint {
            feature: 0,
            max_value: 0.5,
        }],
        5,
    )?;
    let comparators: [&mut dyn Recommender; 3] = [&mut engine, &mut em_refit, &mut hard];
    println!("One generic session loop, three recommenders:");
    for recommender in comparators {
        let label = recommender.state().label;
        let report = run_elicitation(recommender, &user, ElicitationConfig::default(), &mut rng)?;
        println!(
            "  {label:>15}: {} clicks, converged: {}, precision {:.2} against the hidden taste",
            report.clicks, report.converged, report.precision
        );
    }
    println!();

    let final_recs: Vec<RankedPackage> = engine.recommend(&mut rng)?;
    print_recommendations("Learned top carts (engine):", &catalog, &names, &final_recs);

    let truth_top = user.ground_truth_top_k(&catalog, 5)?;
    println!("Ground-truth top carts under the hidden utility:");
    for (package, utility) in &truth_top.packages {
        println!(
            "  utility {:.4}: {}",
            utility,
            describe_package(&catalog, &names, package)
        );
    }
    Ok(())
}
